//! The network simulation driver.
//!
//! Composes every node's sans-io protocol machines with the `simnet`
//! substrate: RPCs and Bitswap messages travel with geo latency and
//! bandwidth costs, dials to NAT'ed/offline peers burn the transport
//! timeouts of §6.1 (5 s TCP/QUIC, 45 s WebSocket), peers churn per their
//! population schedules, and every publish/retrieve produces a
//! phase-timed report ([`crate::ops`]).
//!
//! This module is the substitute for the live IPFS network the paper
//! measures (see DESIGN.md §2): the protocol code above it is identical in
//! structure to what would run on a real transport.

use crate::config::{NodeConfig, TimeoutModel};
use crate::conn::ConnSet;
use crate::ipns::IpnsRecord;
use crate::node::IpfsNode;
use crate::obs::dtrace::{self, DtraceConfig, DtraceSink, SpanFragment, TraceCtx};
use crate::obs::span::SpanTree;
use crate::obs::{
    names, CounterHandle, DialClass, HistogramHandle, MetricsRegistry, OpTrace, TraceConfig,
    TraceEventKind, Tracer,
};
use crate::ops::{
    IpnsPublishReport, IpnsResolveReport, OpId, PublishPhase, PublishReport, RetrievePhase,
    RetrieveReport,
};
use bitswap::{EngineOutput, Message, SessionConfig, SessionHandle};
use bytes::Bytes;
use faultsim::{FaultEvent, FaultOracle, FaultPlan};
use kademlia::behaviour::{DhtMode, DhtOutput, QueryId, QueryStats};
use kademlia::query::{QueryOutcome, QueryTarget};
use kademlia::routing::PeerInfo;
use kademlia::rpc::{Request, Response};
use kademlia::Key;
use merkledag::BlockStore;
use multiformats::{Cid, Keypair, Multiaddr, PeerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::latency::{BandwidthClass, LatencyModel, Region, VantagePoint};
use simnet::{EventQueue, Population, SimDuration, SimTime, TimerId};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Dense node identifier within one simulation.
pub type NodeId = usize;

/// Key-seed base for vantage-node identities, outside the population's
/// seed-derived range.
const VANTAGE_KEY_BASE: u64 = 0xFFFF_0000_0000_0000;

/// Simulation-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Per-node protocol configuration.
    pub node: NodeConfig,
    /// Transport timeout model (drives the Figure 9c spikes).
    pub timeouts: TimeoutModel,
    /// Geo latency/bandwidth model.
    pub latency: LatencyModel,
    /// Server-side request processing time.
    pub server_processing: SimDuration,
    /// Whether provider records carry fresh addresses. go-ipfs v0.10
    /// expires provider addresses quickly, so the paper observed two DHT
    /// walks per retrieval (Figure 9e); `false` reproduces that.
    pub provider_records_carry_addrs: bool,
    /// Whether a successful retriever publishes a provider record itself
    /// (§3.1: retrieving peers become temporary providers).
    pub retriever_becomes_provider: bool,
    /// Ablation (§6.4): launch the DHT walk in parallel with the
    /// opportunistic Bitswap probe instead of waiting out the 1 s timeout.
    pub parallel_dht_and_bitswap: bool,
    /// Oracle-bootstrap: number of numerically-near peers per table.
    pub bootstrap_near_peers: usize,
    /// Oracle-bootstrap: number of random far peers per table.
    pub bootstrap_random_peers: usize,
    /// Republish provider records every 12 h (§3.1).
    pub auto_republish: bool,
    /// Keyspace-ordered reprovide sweep (go-ipfs's accelerated DHT
    /// client): instead of one timer chain and one Closest walk per
    /// published CID, a single per-node sweep timer walks the node's
    /// provided CIDs in DHT-key order, amortizing one FIND_NODE walk
    /// across every CID whose key lands in the same closest-peer
    /// neighborhood and carrying the stores as batched ADD_PROVIDER
    /// RPCs. Only consulted when `auto_republish` is on; `false` keeps
    /// the per-CID chains (the reference path the lifecycle bench and
    /// proptests compare against).
    pub reprovide_sweep: bool,
    /// Keyspace granularity of one sweep batch: provided CIDs are
    /// grouped by the top `reprovide_batch_bits` bits of their DHT key,
    /// one Closest walk per non-empty group. 8 bits ≈ 256 neighborhoods
    /// across the keyspace — coarser (fewer bits) amortizes more CIDs
    /// per walk but targets each store set less precisely.
    pub reprovide_batch_bits: u8,
    /// Ablation (§6.4): disable the DHT client/server split — NAT'ed
    /// clients enter routing tables as if they were servers (pre-v0.5
    /// behaviour), so walks waste time dialing unreachable peers.
    pub clients_in_routing_tables: bool,
    /// Guard timeout for a content fetch.
    pub fetch_timeout: SimDuration,
    /// The opportunistic-Bitswap probe window (§3.2's 1 s timeout before
    /// falling back to the DHT). A knob rather than a constant so the
    /// probe/DHT trade-off is explorable.
    pub bitswap_probe_timeout: SimDuration,
    /// Session duplicate factor: how many peers a live want is raced
    /// across as WANT-BLOCK. 1 fetches each block exactly once (no
    /// redundancy, go-bitswap's default posture); higher trades duplicate
    /// bytes for tail-latency resilience.
    pub duplicate_factor: usize,
    /// How many provider records from the DHT walk seed the fetch swarm
    /// (go-bitswap dials a handful of providers, not just the first).
    pub max_fetch_providers: usize,
    /// Probability that the connection to a walk-discovered peer is gone
    /// by the time the ADD_PROVIDER batch fires, forcing a fresh dial that
    /// fails with a transport timeout. This models what §6.1 observed:
    /// "the spike at 5 s is caused by dial timeouts ... the spike at 45 s
    /// ... by the handshake timeout of the Websocket transport". 53.7 % of
    /// the paper's batches exceeded 5 s, i.e. ≥1 of 20 stores timed out.
    pub stale_dial_prob: f64,
    /// Connection-manager cap: oldest warm connections are pruned beyond
    /// this (go-libp2p's connection manager; its pruning is one reason
    /// publish batches re-dial, §6.1).
    pub max_connections: usize,
    /// Idle-connection expiry: a warm connection unused for longer than
    /// this is torn down before reuse (go-libp2p's connection manager
    /// closes idle connections once past its grace period). Without it,
    /// any node that ever fetched from a provider keeps a warm path to it
    /// forever, letting the opportunistic Bitswap probe short-circuit
    /// retrievals that the paper's pipeline (§3.2) would resolve through
    /// the DHT.
    pub conn_idle_timeout: SimDuration,
    /// Future work the paper flags in §3.1: Direct Connection Upgrade
    /// through Relay (DCUtR) hole punching. When enabled, dials to
    /// NAT'ed-but-online peers succeed with
    /// [`NetworkConfig::dcutr_success_rate`], paying relay-signalling
    /// latency — letting NAT'ed peers host content.
    pub enable_dcutr: bool,
    /// Fraction of hole-punch attempts that succeed (measured deployments
    /// report ~70 %).
    pub dcutr_success_rate: f64,
    /// Hydra boosters (paper §8 future work): extra always-online,
    /// datacenter-hosted DHT heads spread across the keyspace. They join
    /// the network as ordinary servers; their stability accelerates walks
    /// and anchors records.
    pub hydra_heads: usize,
    /// Periodic Kademlia table refresh (go-ipfs refreshes stale buckets
    /// every ~10 min). `None` disables; refresh traffic is modeled as the
    /// oracle self-lookup of [`IpfsNetwork::announce_join`]. Adds one
    /// event per online server per interval — enable for long-horizon
    /// experiments where staleness matters.
    pub table_refresh_interval: Option<SimDuration>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            node: NodeConfig::default(),
            timeouts: TimeoutModel::default(),
            latency: LatencyModel::default(),
            server_processing: SimDuration::from_millis(3),
            provider_records_carry_addrs: false,
            retriever_becomes_provider: false,
            parallel_dht_and_bitswap: false,
            bootstrap_near_peers: 20,
            bootstrap_random_peers: 60,
            auto_republish: false,
            reprovide_sweep: true,
            reprovide_batch_bits: 8,
            clients_in_routing_tables: false,
            fetch_timeout: SimDuration::from_secs(120),
            bitswap_probe_timeout: SimDuration::from_secs(1),
            duplicate_factor: 1,
            max_fetch_providers: 8,
            stale_dial_prob: 0.045,
            max_connections: 900,
            conn_idle_timeout: SimDuration::from_secs(120),
            enable_dcutr: false,
            dcutr_success_rate: 0.7,
            hydra_heads: 0,
            table_refresh_interval: None,
        }
    }
}

/// Lifecycle state of one provided CID on its providing node.
struct ProvidedEntry {
    /// The CID itself (the map key is its DHT key).
    cid: Cid,
    /// Armed per-CID republish timer (per-CID mode only; sweep mode
    /// leaves this `None` — the node-level sweep timer covers it).
    timer: Option<TimerId>,
    /// Per-CID mode: the chain lapsed while the node was offline; the
    /// next rejoin re-announces this CID.
    deferred: bool,
}

/// One simulated node: the IPFS node plus its network-level attributes.
struct SimNode {
    node: IpfsNode,
    region: Region,
    bandwidth: BandwidthClass,
    online: bool,
    is_server: bool,
    /// Warm connections, indexed for O(log n) LRU pruning and O(expired)
    /// idle expiry.
    connections: ConnSet,
    /// Pending bucket-refresh timer. Armed only while the node is online
    /// (cancelled at churn-off, lazily re-armed at rejoin) so offline
    /// nodes contribute zero standing timers to the scheduler.
    refresh_timer: Option<TimerId>,
    /// Every CID this node provides, keyed by DHT key. A `BTreeMap` so
    /// iteration follows keyspace order — deterministic (it feeds
    /// event-scheduling and thus RNG-draw order) and exactly the order
    /// the reprovide sweep batches by. Lookup/removal is O(log n) where
    /// the old `Vec<(Cid, TimerId)>` paid an O(n) position scan per
    /// re-arm and per republish dispatch.
    provided: BTreeMap<Key, ProvidedEntry>,
    /// The single reprovide-sweep timer (sweep mode): one cancellable
    /// timer maintains every provided CID, instead of one chain each.
    sweep_timer: Option<TimerId>,
    /// A sweep lapsed while the node was offline (the timer is cancelled
    /// at churn-off); the next rejoin runs it immediately, mirroring
    /// go-ipfs's reprovide-on-startup sweep.
    sweep_deferred: bool,
    /// When this node's uplink finishes serializing the blocks it has
    /// already committed to send. Concurrent BLOCK transfers from one
    /// sender queue behind each other here (`sample_transfer` prices each
    /// message in isolation), so a swarm's aggregate goodput scales with
    /// the number of uplinks it draws from — the physics the swarm bench
    /// measures. Control messages are negligible and skip the queue, and
    /// an isolated single block sees zero wait, keeping the
    /// single-provider path's timing (and RNG stream) unchanged.
    uplink_free_at: SimTime,
}

/// Events flowing through the simulation.
#[derive(Debug, Clone)]
enum NetEvent {
    /// A DHT query RPC arrives at its target. Carries the sender's causal
    /// context so the server's handler span joins the requester's trace.
    RpcArrive { from: NodeId, to: NodeId, query: QueryId, request: Box<Request>, ctx: TraceCtx },
    /// A DHT response arrives back at the requester.
    RpcResponse { to: NodeId, query: QueryId, from_peer: PeerId, response: Box<Response> },
    /// A query RPC failed (dial timeout / no response within deadline).
    RpcFail { node: NodeId, query: QueryId, peer: PeerId },
    /// A fire-and-forget ADD_PROVIDER arrives at its target (§3.1).
    ProviderStoreArrive { from: NodeId, to: NodeId, key: Key, provider: Arc<PeerInfo> },
    /// One item of a publish RPC batch settled at the publisher.
    ProviderStoreSettled { op: OpId, ok: bool },
    /// A Bitswap message arrives. Carries the causal context of the
    /// session's op; responders echo it back on their replies.
    BitswapArrive { from: NodeId, to: NodeId, message: Box<Message>, ctx: TraceCtx },
    /// The 1 s opportunistic-Bitswap window expired (§3.2).
    BitswapProbeTimeout { op: OpId },
    /// The dial to a content provider completed; start the fetch session.
    FetchConnected { op: OpId, provider: PeerId },
    /// Guard: a fetch that has not completed by now fails.
    FetchTimeout { op: OpId },
    /// A peer's churn schedule moves it on- or offline.
    Churn { node: NodeId, online: bool },
    /// Periodic provider-record republication (§3.1, 12 h).
    Republish { node: NodeId, cid: Cid },
    /// Keyspace-ordered reprovide sweep fires for one node: walk the
    /// provided-CID set in DHT-key order, one Closest walk per key
    /// neighborhood, batched ADD_PROVIDER stores.
    ReprovideSweep { node: NodeId },
    /// A fire-and-forget batched ADD_PROVIDER arrives at its target.
    ProviderBatchArrive { from: NodeId, to: NodeId, keys: Arc<Vec<Key>>, provider: Arc<PeerInfo> },
    /// Periodic Kademlia bucket refresh for one node.
    RefreshTable { node: NodeId },
    /// A PUT_VALUE (IPNS record) arrives at its target (§3.3).
    ValueStoreArrive { from: NodeId, to: NodeId, key: Key, value: Vec<u8> },
    /// One item of an IPNS publish batch settled at the publisher.
    ValueStoreSettled { op: OpId, ok: bool },
}

// The scheduler copies pending events through timing-wheel slots, so the
// enum's footprint is paid on every schedule/cascade/pop. The RPC and
// Bitswap payloads above are boxed to keep the inline size capped by the
// plain-data variants; growing past this bound should be a deliberate
// choice, not an accident. The sharded cell's event enum
// (`crate::shardsim::Ev`) carries the same bound: its events additionally
// cross shard mailboxes at window boundaries, where the inline size is
// paid once more per hand-off.
const _: () = assert!(std::mem::size_of::<NetEvent>() <= 80);

/// Internal per-operation state.
enum OpState {
    Publish {
        node: NodeId,
        cid: Cid,
        t0: SimTime,
        t_walk_end: Option<SimTime>,
        phase: PublishPhase,
        silent: bool,
        /// Final stats of the Closest walk (filled at QueryDone).
        walk_rpcs: u64,
        walk_failures: u64,
    },
    Retrieve {
        node: NodeId,
        cid: Cid,
        t0: SimTime,
        phase: RetrievePhase,
        t_bitswap_end: Option<SimTime>,
        t_provider_end: Option<SimTime>,
        t_peer_end: Option<SimTime>,
        t_fetch_start: Option<SimTime>,
        probe_session: Option<SessionHandle>,
        fetch_session: Option<SessionHandle>,
        via_bitswap: bool,
        addrbook_hit: bool,
        /// Peers that answered the opportunistic probe with HAVE (or
        /// blocks) but didn't finish the transfer in the window: they
        /// short-circuit into the fetch session's candidate set instead of
        /// being discarded with the probe.
        probe_havers: Vec<PeerId>,
        /// Every swarm member whose dial is under way: the fetch session
        /// is seeded with all of them at the first connect, so the
        /// WANT-HAVE round runs while the remaining connects finish
        /// (go-bitswap feeds discovered providers to the session the same
        /// way, ahead of their connections).
        fetch_candidates: Vec<PeerId>,
        /// Outstanding peer-record walks for secondary providers. The op
        /// fails on a failed walk only when nothing else is in flight.
        walks_outstanding: usize,
    },
    PublishIpns {
        node: NodeId,
        name: PeerId,
        value: Vec<u8>,
        t0: SimTime,
        t_walk_end: Option<SimTime>,
        outstanding: usize,
        stored: usize,
    },
    ResolveIpns {
        node: NodeId,
        name: PeerId,
        t0: SimTime,
    },
    /// One sweep batch: a Closest walk toward the batch's first key,
    /// then one batched ADD_PROVIDER per closest peer. Silent — sweep
    /// maintenance produces metrics, not publish reports.
    SweepBatch {
        node: NodeId,
        /// CIDs in this keyspace neighborhood, in DHT-key order.
        cids: Vec<Cid>,
        /// Batched stores still in flight.
        outstanding: usize,
    },
}

/// Deferred action extracted from a borrow of the op table.
enum Action {
    PublishBatch { node: NodeId, cid: Cid, peers: Vec<Arc<PeerInfo>> },
    IpnsBatch { node: NodeId, key: Key, value: Vec<u8>, peers: Vec<Arc<PeerInfo>> },
    IpnsFail,
    IpnsResolved { value: Vec<u8> },
    PublishFail,
    SweepStoreBatch { node: NodeId, cids: Vec<Cid>, peers: Vec<Arc<PeerInfo>> },
    SweepFail,
    PeerWalk { node: NodeId, providers: Vec<PeerId> },
    Fetch { node: NodeId, providers: Vec<Arc<PeerInfo>> },
    JoinFetch { node: NodeId, provider: Arc<PeerInfo> },
    RetrieveFail,
    CancelProbe { node: NodeId, session: SessionHandle },
    Nothing,
}

/// Counter name for an outbound DHT RPC of the given type.
fn request_kind(request: &Request) -> usize {
    match request {
        Request::FindNode { .. } => 0,
        Request::GetProviders { .. } => 1,
        Request::AddProvider { .. } => 2,
        Request::PutPeerRecord { .. } => 3,
        Request::PutValue { .. } => 4,
        Request::GetValue { .. } => 5,
        Request::AddProviderBatch { .. } => 6,
    }
}

/// Index of a Bitswap message type into the [`HotMetrics`] counter arrays.
fn bitswap_kind(message: &Message) -> usize {
    match message {
        Message::WantHave(_) => 0,
        Message::Have(_) => 1,
        Message::DontHave(_) => 2,
        Message::WantBlock(_) => 3,
        Message::Block { .. } => 4,
        Message::Cancel(_) => 5,
    }
}

/// The first eight bytes of a CID's DHT key, big-endian — a compact,
/// deterministic identifier for naming a want in flight-recorder lines.
fn cid_low64(cid: &Cid) -> u64 {
    let key = cid.dht_key();
    u64::from_be_bytes(key[..8].try_into().unwrap())
}

/// Index of a dial-failure class into [`HotMetrics::dial_fail`].
fn dial_class_kind(class: DialClass) -> usize {
    match class {
        DialClass::FastRefuse => 0,
        DialClass::Timeout5s => 1,
        DialClass::Websocket45s => 2,
    }
}

/// Dense metric handles for everything the per-event hot path touches,
/// resolved once at [`IpfsNetwork::from_population`] from [`names`]
/// constants. Bumping through a handle is a bounds-checked array write —
/// no string hashing or tree walk per event. Cold paths (reports, fault
/// bookkeeping, per-operation counters) keep using the string-keyed API.
struct HotMetrics {
    /// Outbound DHT RPCs by [`request_kind`].
    rpc_sent: [CounterHandle; 7],
    /// Inbound DHT RPCs by [`request_kind`].
    rpc_recv: [CounterHandle; 7],
    /// Outbound Bitswap messages by [`bitswap_kind`].
    bitswap_sent: [CounterHandle; 6],
    /// Delivered Bitswap messages by [`bitswap_kind`].
    bitswap_recv: [CounterHandle; 6],
    /// Failed dials by [`dial_class_kind`].
    dial_fail: [CounterHandle; 3],
    dht_rpc_ok: CounterHandle,
    dht_rpc_failed: CounterHandle,
    dials_attempted: CounterHandle,
    dials_warm: CounterHandle,
    dials_ok: CounterHandle,
    dials_failed: CounterHandle,
    conn_idle_expired: CounterHandle,
    conn_prunes: CounterHandle,
    provider_records_stored: CounterHandle,
    dht_walk_rpcs: HistogramHandle,
    /// Blocks received and verified by client sessions.
    session_blocks_received: CounterHandle,
    /// Duplicate blocks attributed to client sessions.
    session_dup_blocks: CounterHandle,
    /// WANT-BLOCKs issued by client sessions (added at op completion).
    session_wants_sent: CounterHandle,
    /// Re-routed wants after a renege/crash (added at op completion).
    session_reroutes: CounterHandle,
    /// Per-peer WANT-BLOCK→BLOCK latency in ms.
    peer_latency_ms: HistogramHandle,
}

impl HotMetrics {
    fn resolve(m: &mut MetricsRegistry) -> HotMetrics {
        let c = |m: &mut MetricsRegistry, name| m.counter_handle(name);
        HotMetrics {
            rpc_sent: [
                c(m, names::DHT_RPC_SENT_FIND_NODE),
                c(m, names::DHT_RPC_SENT_GET_PROVIDERS),
                c(m, names::DHT_RPC_SENT_ADD_PROVIDER),
                c(m, names::DHT_RPC_SENT_PUT_PEER_RECORD),
                c(m, names::DHT_RPC_SENT_PUT_VALUE),
                c(m, names::DHT_RPC_SENT_GET_VALUE),
                c(m, names::DHT_RPC_SENT_ADD_PROVIDER_BATCH),
            ],
            rpc_recv: [
                c(m, names::DHT_RPC_RECV_FIND_NODE),
                c(m, names::DHT_RPC_RECV_GET_PROVIDERS),
                c(m, names::DHT_RPC_RECV_ADD_PROVIDER),
                c(m, names::DHT_RPC_RECV_PUT_PEER_RECORD),
                c(m, names::DHT_RPC_RECV_PUT_VALUE),
                c(m, names::DHT_RPC_RECV_GET_VALUE),
                c(m, names::DHT_RPC_RECV_ADD_PROVIDER_BATCH),
            ],
            bitswap_sent: [
                c(m, names::BITSWAP_SENT_WANT_HAVE),
                c(m, names::BITSWAP_SENT_HAVE),
                c(m, names::BITSWAP_SENT_DONT_HAVE),
                c(m, names::BITSWAP_SENT_WANT_BLOCK),
                c(m, names::BITSWAP_SENT_BLOCK),
                c(m, names::BITSWAP_SENT_CANCEL),
            ],
            bitswap_recv: [
                c(m, names::BITSWAP_RECV_WANT_HAVE),
                c(m, names::BITSWAP_RECV_HAVE),
                c(m, names::BITSWAP_RECV_DONT_HAVE),
                c(m, names::BITSWAP_RECV_WANT_BLOCK),
                c(m, names::BITSWAP_RECV_BLOCK),
                c(m, names::BITSWAP_RECV_CANCEL),
            ],
            dial_fail: [
                c(m, DialClass::FastRefuse.metric()),
                c(m, DialClass::Timeout5s.metric()),
                c(m, DialClass::Websocket45s.metric()),
            ],
            dht_rpc_ok: c(m, names::DHT_RPC_OK),
            dht_rpc_failed: c(m, names::DHT_RPC_FAILED),
            dials_attempted: c(m, names::DIALS_ATTEMPTED),
            dials_warm: c(m, names::DIALS_WARM),
            dials_ok: c(m, names::DIALS_OK),
            dials_failed: c(m, names::DIALS_FAILED),
            conn_idle_expired: c(m, names::CONN_IDLE_EXPIRED),
            conn_prunes: c(m, names::CONN_PRUNES),
            provider_records_stored: c(m, names::PROVIDER_RECORDS_STORED),
            dht_walk_rpcs: m.histogram_handle(names::DHT_WALK_RPCS),
            session_blocks_received: c(m, names::BITSWAP_SESSION_BLOCKS_RECEIVED),
            session_dup_blocks: c(m, names::BITSWAP_SESSION_DUP_BLOCKS),
            session_wants_sent: c(m, names::BITSWAP_SESSION_WANTS_SENT),
            session_reroutes: c(m, names::BITSWAP_SESSION_REROUTES),
            // Per-peer transfer latencies are high-volume and only read as
            // percentiles: streaming buckets bound the footprint at a
            // ≤2.5% relative error instead of retaining every sample.
            peer_latency_ms: m.histogram_handle_streaming(names::BITSWAP_PEER_LATENCY_MS),
        }
    }
}

/// The simulated IPFS network.
pub struct IpfsNetwork {
    queue: EventQueue<NetEvent>,
    rng: StdRng,
    cfg: NetworkConfig,
    nodes: Vec<SimNode>,
    peer_index: HashMap<PeerId, NodeId>,
    ops: HashMap<OpId, OpState>,
    /// Which operation owns each outstanding query.
    query_owner: HashMap<(NodeId, QueryId), OpId>,
    /// Which operation owns each Bitswap session.
    session_owner: HashMap<(NodeId, SessionHandle), OpId>,
    /// Outstanding query RPCs, for stale-timeout suppression.
    pending_rpcs: HashSet<(NodeId, QueryId, PeerId)>,
    next_op: u64,
    /// All DHT servers sorted by key — used by the join-time announcement
    /// (each churn-online event re-inserts the peer near its key, the
    /// effect a real node's bootstrap self-lookup has).
    sorted_servers: Vec<(Key, NodeId)>,
    /// Completed publish reports (drained by experiments).
    pub publish_reports: Vec<PublishReport>,
    /// Completed retrieve reports (drained by experiments).
    pub retrieve_reports: Vec<RetrieveReport>,
    /// Completed IPNS publish reports.
    pub ipns_publish_reports: Vec<IpnsPublishReport>,
    /// Completed IPNS resolve reports.
    pub ipns_resolve_reports: Vec<IpnsResolveReport>,
    /// Total events processed (diagnostics).
    pub events_processed: u64,
    /// Metrics accumulated over the run (RPC volume, dials, Bitswap
    /// traffic, record lifecycle, churn — see [`crate::obs`]).
    metrics: MetricsRegistry,
    /// Pre-resolved handles into `metrics` for the per-event hot path.
    hot: HotMetrics,
    /// Per-operation trace collector (off by default).
    tracer: Tracer,
    /// Distributed-trace storage: per-node flight rings (always on), the
    /// stitching collection, and per-op context bookkeeping.
    dtrace: DtraceSink,
    /// Rendered flight-recorder post-mortems, drained by experiments.
    postmortems: Vec<(OpId, String)>,
    /// Scripted-fault state; idle (and cost-free) unless a plan is
    /// installed with [`IpfsNetwork::install_fault_plan`].
    faults: FaultOracle,
    /// Number of population peers (ids `0..crashable`) — the pool crash
    /// waves draw victims from; hydra/vantage infrastructure is exempt.
    crashable: usize,
}

impl IpfsNetwork {
    /// Builds a network from a generated population plus vantage nodes in
    /// the given AWS regions (§4.3). Vantage nodes are always-online DHT
    /// servers on datacenter links; their ids are the last
    /// `vantages.len()` indices (see [`IpfsNetwork::vantage_ids`]).
    pub fn from_population(
        pop: &Population,
        vantages: &[VantagePoint],
        cfg: NetworkConfig,
        seed: u64,
    ) -> IpfsNetwork {
        let rng = StdRng::seed_from_u64(seed ^ 0x6e65_7473_696d_2121);
        let mut nodes = Vec::with_capacity(pop.peers.len() + vantages.len());
        let mut peer_index = HashMap::new();
        let mut queue = EventQueue::new();

        for p in &pop.peers {
            let keypair = Keypair::from_seed(p.key_seed);
            let addr: Multiaddr =
                format!("/ip4/{}/tcp/4001", p.host.ip).parse().expect("valid addr");
            let mode = if p.nat { DhtMode::Client } else { DhtMode::Server };
            let node = IpfsNode::new(keypair, vec![addr], mode, cfg.node);
            peer_index.insert(node.peer_id().clone(), nodes.len());
            let id = nodes.len();
            for (start, end) in &p.schedule.sessions {
                queue.schedule_at(*start, NetEvent::Churn { node: id, online: true });
                queue.schedule_at(*end, NetEvent::Churn { node: id, online: false });
            }
            nodes.push(SimNode {
                node,
                region: p.host.region,
                bandwidth: p.bandwidth,
                online: p.schedule.online_at(SimTime::ZERO),
                is_server: !p.nat,
                connections: ConnSet::new(),
                refresh_timer: None,
                provided: BTreeMap::new(),
                sweep_timer: None,
                sweep_deferred: false,
                uplink_free_at: SimTime::ZERO,
            });
        }

        // Hydra boosters: many always-online heads, before the vantage
        // nodes so `vantage_ids` keeps addressing the trailing slots.
        for i in 0..cfg.hydra_heads {
            let keypair = Keypair::from_seed(VANTAGE_KEY_BASE + 0x1_0000 + i as u64);
            let addr: Multiaddr =
                format!("/ip4/198.51.100.{}/tcp/4001", (i % 250) + 1).parse().unwrap();
            let node = IpfsNode::new(keypair, vec![addr], DhtMode::Server, cfg.node);
            peer_index.insert(node.peer_id().clone(), nodes.len());
            nodes.push(SimNode {
                node,
                region: Region::NorthAmericaEast,
                bandwidth: BandwidthClass::Datacenter,
                online: true,
                is_server: true,
                connections: ConnSet::new(),
                refresh_timer: None,
                provided: BTreeMap::new(),
                sweep_timer: None,
                sweep_deferred: false,
                uplink_free_at: SimTime::ZERO,
            });
        }

        for (i, vp) in vantages.iter().enumerate() {
            let keypair = Keypair::from_seed(VANTAGE_KEY_BASE + i as u64);
            let addr: Multiaddr = format!("/ip4/203.0.113.{}/tcp/4001", i + 1).parse().unwrap();
            let node = IpfsNode::new(keypair, vec![addr], DhtMode::Server, cfg.node);
            peer_index.insert(node.peer_id().clone(), nodes.len());
            nodes.push(SimNode {
                node,
                region: vp.region(),
                bandwidth: BandwidthClass::Datacenter,
                online: true,
                is_server: true,
                connections: ConnSet::new(),
                refresh_timer: None,
                provided: BTreeMap::new(),
                sweep_timer: None,
                sweep_deferred: false,
                uplink_free_at: SimTime::ZERO,
            });
        }

        // Periodic table refresh, staggered per node to avoid a thundering
        // herd of simultaneous refresh events. Only online nodes are armed:
        // a node that starts (or goes) offline gets its chain armed at the
        // churn-online transition instead, so dead timers never sit in the
        // scheduler.
        if let Some(interval) = cfg.table_refresh_interval {
            for (id, node) in nodes.iter_mut().enumerate() {
                if !node.online {
                    continue;
                }
                let stagger = SimDuration::from_nanos(interval.as_nanos() * (id as u64 % 64) / 64);
                node.refresh_timer = Some(queue.schedule_at_cancellable(
                    SimTime::ZERO + stagger,
                    NetEvent::RefreshTable { node: id },
                ));
            }
        }

        let node_count = nodes.len();
        let mut metrics = MetricsRegistry::new();
        let hot = HotMetrics::resolve(&mut metrics);
        let mut net = IpfsNetwork {
            queue,
            rng,
            cfg,
            nodes,
            peer_index,
            ops: HashMap::new(),
            query_owner: HashMap::new(),
            session_owner: HashMap::new(),
            pending_rpcs: HashSet::new(),
            next_op: 0,
            sorted_servers: Vec::new(),
            publish_reports: Vec::new(),
            retrieve_reports: Vec::new(),
            ipns_publish_reports: Vec::new(),
            ipns_resolve_reports: Vec::new(),
            events_processed: 0,
            metrics,
            hot,
            tracer: Tracer::default(),
            dtrace: DtraceSink::new(node_count),
            postmortems: Vec::new(),
            faults: FaultOracle::idle(),
            crashable: pop.peers.len(),
        };
        net.oracle_bootstrap();
        net
    }

    /// Fills every node's routing table the way a converged network would
    /// have it: the k XOR-nearest servers (found via a numeric-neighbour
    /// window, since XOR-near implies a shared prefix implies numeric
    /// adjacency) plus random far servers to populate the top buckets.
    /// Each server is also inserted into the tables of the servers nearest
    /// to *its* key — the effect a real node's join-time self-lookup has —
    /// so peer walks (§3.2) can resolve PeerIDs to addresses.
    fn oracle_bootstrap(&mut self) {
        let near = self.cfg.bootstrap_near_peers;
        let random = self.cfg.bootstrap_random_peers;
        // Which peers may appear in routing tables: servers only (§2.3),
        // unless the client/server-split ablation is on.
        let include_clients = self.cfg.clients_in_routing_tables;
        // Only peers online at t=0 seed the tables: a converged live
        // network's tables are kept fresh by query traffic and failure
        // eviction, so at any instant they are dominated by live peers.
        // Staleness then accumulates realistically as peers churn off.
        let mut servers: Vec<(Key, NodeId)> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| (n.is_server || include_clients) && n.online)
            .map(|(i, n)| (Key::from_peer(n.node.peer_id()), i))
            .collect();
        servers.sort_by_key(|a| a.0 .0);
        if servers.is_empty() {
            return;
        }
        // Shared handles only — bumping a refcount per node instead of
        // deep-copying every identity and address list up front.
        let infos: Vec<Arc<PeerInfo>> =
            self.nodes.iter().map(|n| Arc::clone(n.node.info())).collect();

        for id in 0..self.nodes.len() {
            let own_key = Key::from_peer(self.nodes[id].node.peer_id());
            let pos = servers.partition_point(|(k, _)| k.0 < own_key.0);
            let window = 3 * near.max(1);
            let lo = pos.saturating_sub(window);
            let hi = (pos + window).min(servers.len());
            let mut candidates: Vec<(kademlia::Distance, NodeId)> = servers[lo..hi]
                .iter()
                .filter(|(_, sid)| *sid != id)
                .map(|(k, sid)| (k.distance(&own_key), *sid))
                .collect();
            candidates.sort_by_key(|a| a.0);
            for (_, sid) in candidates.into_iter().take(near) {
                self.nodes[id].node.dht.add_peer(infos[sid].clone(), true);
            }
            for _ in 0..random {
                let (_, sid) = servers[self.rng.random_range(0..servers.len())];
                if sid != id {
                    self.nodes[id].node.dht.add_peer(infos[sid].clone(), true);
                }
            }
        }

        // Persist the full server list (independent of t=0 online status)
        // for join-time announcements during the run.
        let mut all_servers: Vec<(Key, NodeId)> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_server)
            .map(|(i, n)| (Key::from_peer(n.node.peer_id()), i))
            .collect();
        all_servers.sort_by_key(|a| a.0 .0);
        self.sorted_servers = all_servers;

        // Reverse direction: make each server known (with addresses) to the
        // servers closest to its own key.
        for &(key, id) in &servers {
            let pos = servers.partition_point(|(k, _)| k.0 < key.0);
            let window = 2 * near.max(1);
            let lo = pos.saturating_sub(window);
            let hi = (pos + window).min(servers.len());
            let mut hosts: Vec<(kademlia::Distance, NodeId)> = servers[lo..hi]
                .iter()
                .filter(|(_, sid)| *sid != id)
                .map(|(k, sid)| (k.distance(&key), *sid))
                .collect();
            hosts.sort_by_key(|a| a.0);
            for (_, host) in hosts.into_iter().take(near) {
                if self.nodes[host].is_server {
                    self.nodes[host].node.dht.add_peer(infos[id].clone(), true);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total number of nodes (population + vantage).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node ids of the vantage nodes (the last `n` created).
    pub fn vantage_ids(&self, n: usize) -> Vec<NodeId> {
        (self.nodes.len() - n..self.nodes.len()).collect()
    }

    /// The PeerID of a node.
    pub fn peer_id(&self, id: NodeId) -> &PeerId {
        self.nodes[id].node.peer_id()
    }

    /// Resolves a PeerID to its node id.
    pub fn resolve(&self, peer: &PeerId) -> Option<NodeId> {
        self.peer_index.get(peer).copied()
    }

    /// Whether a node is currently dialable (online DHT server).
    pub fn is_dialable(&self, id: NodeId) -> bool {
        self.nodes[id].online && self.nodes[id].is_server
    }

    /// Whether a node is currently online (regardless of NAT status).
    pub fn is_online(&self, id: NodeId) -> bool {
        self.nodes[id].online
    }

    /// All k-bucket entries of a node (crawler support, §4.1).
    pub fn k_bucket_entries(&self, id: NodeId) -> Vec<Arc<PeerInfo>> {
        self.nodes[id].node.dht.routing().all_peers()
    }

    /// Ids of all DHT-server nodes.
    pub fn server_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].is_server).collect()
    }

    /// Mutable access to a node (tests, gateway integration).
    pub fn node_mut(&mut self, id: NodeId) -> &mut IpfsNode {
        &mut self.nodes[id].node
    }

    /// Shared access to a node.
    pub fn node(&self, id: NodeId) -> &IpfsNode {
        &self.nodes[id].node
    }

    /// Region of a node.
    pub fn region(&self, id: NodeId) -> Region {
        self.nodes[id].region
    }

    /// Whether `id` can act as a healthy gateway bridge right now: the
    /// node is online and at least one other region is reachable from its
    /// region (i.e. an active partition has not cut it off from the rest
    /// of the network). A fleet load balancer uses this to fail traffic
    /// over to surviving instances during a regional outage.
    pub fn bridge_healthy(&self, id: NodeId) -> bool {
        if !self.is_online(id) {
            return false;
        }
        if !self.faults.has_active_faults() {
            return true;
        }
        let r = self.nodes[id].region;
        Region::ALL.iter().any(|&other| other != r && !self.faults.blocked(r, other))
    }

    /// Number of currently active operations.
    pub fn active_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of warm connections a node currently holds.
    pub fn connection_count(&self, id: NodeId) -> usize {
        self.nodes[id].connections.len()
    }

    /// Mean logical bytes of per-node protocol state: warm-connection
    /// arena + routing-table entries + address-book slab. Length-based
    /// (not capacity-based), so the figure is independent of allocator
    /// growth policy and of how many shards executed the run.
    pub fn bytes_per_node_estimate(&self) -> u64 {
        if self.nodes.is_empty() {
            return 0;
        }
        let total: u64 = self
            .nodes
            .iter()
            .map(|n| {
                n.connections.bytes()
                    + n.node.dht.routing().bytes_estimate()
                    + n.node.addr_book.bytes_estimate()
                    + n.node.dht.store().bytes_estimate()
            })
            .sum();
        total / self.nodes.len() as u64
    }

    /// Whether two nodes currently share a warm connection.
    pub fn is_connected(&self, a: NodeId, b: NodeId) -> bool {
        self.nodes[a].connections.contains(b)
    }

    /// Read access to the run's accumulated metrics.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the run's metrics (experiments fold their own
    /// counters in alongside the simulator's).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Enables/disables per-operation tracing. Already-collected traces
    /// are kept.
    pub fn set_trace_config(&mut self, config: TraceConfig) {
        self.tracer.set_config(config);
    }

    /// The trace collected for an operation (tracing must have been
    /// enabled before the operation started).
    pub fn trace(&self, op: OpId) -> Option<&OpTrace> {
        self.tracer.trace(op)
    }

    /// Removes and returns the trace collected for an operation.
    pub fn take_trace(&mut self, op: OpId) -> Option<OpTrace> {
        self.tracer.take(op)
    }

    /// Removes and returns every collected trace, sorted by [`OpId`] —
    /// the deterministic order bulk exports must use.
    pub fn drain_traces(&mut self) -> Vec<(OpId, OpTrace)> {
        self.tracer.drain_sorted()
    }

    /// Configures the distributed-trace sink: fragment collection for
    /// stitching, the always-on flight recorder, and its post-mortem
    /// deadline.
    pub fn set_dtrace(&mut self, cfg: DtraceConfig) {
        self.dtrace.set_config(cfg);
    }

    /// The remote span fragments collected so far (record order).
    pub fn dtrace_fragments(&self) -> &[SpanFragment] {
        self.dtrace.fragments()
    }

    /// Stitches an op's requester-side trace with every remote fragment
    /// its trace id produced, yielding one distributed [`SpanTree`]. The
    /// op must have been started while the sink was active (its origin
    /// node is re-derived from the sink's registry).
    pub fn stitched_trace(&self, op: OpId, trace: &OpTrace) -> Option<SpanTree> {
        let node = self.dtrace.op_node(op)?;
        dtrace::stitch(node, op, trace, self.dtrace.fragments())
    }

    /// Removes and returns every rendered flight-recorder post-mortem, in
    /// op-completion order (deterministic: completion is simulation
    /// order).
    pub fn drain_postmortems(&mut self) -> Vec<(OpId, String)> {
        std::mem::take(&mut self.postmortems)
    }

    /// Records a gateway-side span (serve, bridge, fetch tiers) into an
    /// op's distributed trace, parented at the op root. The gateway layer
    /// sits above the simulator, so it reports its spans through this
    /// hook instead of carrying a [`TraceCtx`] of its own.
    pub fn record_gateway_span(
        &mut self,
        op: OpId,
        gateway_node: NodeId,
        detail: &'static str,
        bytes: u64,
        start: SimTime,
        end: SimTime,
    ) {
        if !self.dtrace.active() {
            return;
        }
        let Some(origin) = self.dtrace.op_node(op) else { return };
        let tid = dtrace::trace_id(origin, op);
        self.dtrace.record_span(
            tid,
            dtrace::root_span(tid),
            gateway_node,
            None,
            "gw",
            detail,
            bytes,
            0,
            start,
            end,
        );
    }

    /// Sweeps every node's provider store, dropping records past the 24 h
    /// expiry (§3.1) and metering them; returns how many were removed.
    /// The periodic table-refresh tick does this automatically when
    /// [`NetworkConfig::table_refresh_interval`] is set. Expiry inside the
    /// store runs on per-shard timing wheels — O(expired), not
    /// O(records) — with the original full-table scan available as a
    /// diff-gated reference via `IPFS_REPRO_EXPIRY=scan`.
    pub fn sweep_provider_records(&mut self) -> usize {
        let now = self.now();
        let mut removed = 0;
        for n in &mut self.nodes {
            removed += n.node.dht.expire_records(now);
        }
        self.metrics.add(names::PROVIDER_RECORDS_EXPIRED, removed as u64);
        removed
    }

    /// Seeds `id` as the provider of `count` synthetic single-block CIDs
    /// (derived from `tag`) and arms the reprovide machinery for each —
    /// WITHOUT running the initial publication walks. Maintenance-bench
    /// setup: at catalog sizes of 10^5–10^6 CIDs, paying one full walk
    /// per CID just to set the stage would dwarf the steady-state
    /// reprovide traffic under measurement; the first republish cycle
    /// (per-CID chains or the keyspace sweep, per
    /// [`NetworkConfig::reprovide_sweep`]) places the records instead.
    pub fn seed_provided(&mut self, id: NodeId, tag: u64, count: usize) -> Vec<Cid> {
        assert!(self.cfg.auto_republish, "seed_provided requires auto_republish");
        let mut cids = Vec::with_capacity(count);
        for i in 0..count as u64 {
            let mut payload = [0u8; 16];
            payload[..8].copy_from_slice(&tag.to_le_bytes());
            payload[8..].copy_from_slice(&i.to_le_bytes());
            let cid = Cid::from_raw_data(&payload);
            self.nodes[id].node.store.put(cid.clone(), Bytes::copy_from_slice(&payload));
            self.arm_reprovide(id, cid.clone());
            cids.push(cid);
        }
        cids
    }

    /// Whether any online node currently holds an unexpired provider
    /// record for `cid` — record availability as an omniscient DHT-state
    /// probe (no walks run, no virtual time spent).
    pub fn provider_record_available(&self, cid: &Cid) -> bool {
        let key = Key::from_cid(cid);
        let now = self.now();
        self.nodes.iter().any(|n| n.online && !n.node.dht.store().providers(&key, now).is_empty())
    }

    /// Total provider-record entries across every node's store (expired
    /// entries not yet swept are included — this is resident state).
    pub fn provider_records_total(&self) -> u64 {
        self.nodes.iter().map(|n| n.node.dht.store().provider_entry_count() as u64).sum()
    }

    /// Opens a warm connection between two nodes (no time charged; used
    /// for experiment setup, e.g. gateway neighbour sets).
    pub fn connect(&mut self, a: NodeId, b: NodeId) {
        let now = self.now();
        self.nodes[a].connections.insert(b, now);
        self.nodes[b].connections.insert(a, now);
        self.prune_connections(a);
        self.prune_connections(b);
    }

    /// Connection-manager pruning: drop least-recently-used connections
    /// beyond the cap.
    fn prune_connections(&mut self, id: NodeId) {
        while self.nodes[id].connections.len() > self.cfg.max_connections {
            match self.nodes[id].connections.lru() {
                Some(v) => {
                    self.nodes[id].connections.remove(v);
                    self.nodes[v].connections.remove(id);
                    self.metrics.incr_handle(self.hot.conn_prunes);
                }
                None => break,
            }
        }
    }

    /// Tears down warm connections of `id` that have sat unused past the
    /// idle timeout (lazy sweep, run before the connection set is used).
    /// Walks the recency index oldest-first, so the cost is proportional
    /// to the number of expired connections, not the set size.
    fn expire_idle_connections(&mut self, id: NodeId, now: SimTime) {
        let timeout = self.cfg.conn_idle_timeout;
        while let Some(peer) = self.nodes[id].connections.pop_idle(now, timeout) {
            self.nodes[peer].connections.remove(id);
            self.metrics.incr_handle(self.hot.conn_idle_expired);
        }
    }

    /// Closes every connection of a node — the experiment reset of §4.3
    /// ("they disconnect to prevent the next retrieval operation being
    /// resolved through Bitswap").
    pub fn disconnect_all(&mut self, id: NodeId) {
        for p in self.nodes[id].connections.drain() {
            self.nodes[p].connections.remove(id);
        }
    }

    /// Forgets `peer` in `node`'s address book (experiment control: forces
    /// the second DHT walk the paper measures in Figure 9e).
    pub fn forget_address(&mut self, node: NodeId, peer: &PeerId) {
        self.nodes[node].node.addr_book.remove(peer);
    }

    /// Join-time announcement: when a peer comes online it performs a
    /// self-lookup, which (a) makes the servers nearest its key learn its
    /// address — so peer walks can resolve it — and (b) refreshes its own
    /// routing table with currently-online peers. Modeled as an oracle
    /// shortcut (the walk itself adds no information at this fidelity).
    fn announce_join(&mut self, id: NodeId) {
        if self.sorted_servers.is_empty() {
            return;
        }
        let near = self.cfg.bootstrap_near_peers.max(1);
        let own_region = self.nodes[id].region;
        let info = self.nodes[id].node.info().clone();
        let own_key = info.key(); // cached SHA-256 of the PeerID
        let pos = self.sorted_servers.partition_point(|(k, _)| k.0 < own_key.0);
        let window = 3 * near;
        let lo = pos.saturating_sub(window);
        let hi = (pos + window).min(self.sorted_servers.len());
        // The self-lookup this models is ordinary DHT traffic: it cannot
        // cross an active partition, so neither may the oracle shortcut.
        let reachable = |net: &Self, sid: NodeId| {
            net.nodes[sid].online && !net.faults.blocked(own_region, net.nodes[sid].region)
        };
        // Both halves of the announcement see the same neighbourhood — the
        // `near` reachable servers closest to the joiner's key — so compute
        // the candidate list once. Distances are unique (SHA-256 keys), so
        // select-then-sort matches a full stable sort's first `near`.
        let mut nearby: Vec<(kademlia::Distance, NodeId)> = self.sorted_servers[lo..hi]
            .iter()
            .filter(|(_, sid)| *sid != id && reachable(self, *sid))
            .map(|(k, sid)| (k.distance(&own_key), *sid))
            .collect();
        if nearby.len() > near {
            nearby.select_nth_unstable(near - 1);
            nearby.truncate(near);
        }
        nearby.sort_unstable();
        // (a) Insert self into nearby online servers' tables.
        if self.nodes[id].is_server {
            for &(_, host) in &nearby {
                self.nodes[host].node.dht.add_peer(info.clone(), true);
            }
        }
        // (b) Refresh own table: nearby + random online servers.
        let mut to_add: Vec<NodeId> = nearby.into_iter().map(|(_, sid)| sid).collect();
        for _ in 0..self.cfg.bootstrap_random_peers / 3 {
            let (_, sid) = self.sorted_servers[self.rng.random_range(0..self.sorted_servers.len())];
            if sid != id && reachable(self, sid) {
                to_add.push(sid);
            }
        }
        for sid in to_add {
            let peer_info = self.nodes[sid].node.info().clone();
            self.nodes[id].node.dht.add_peer(peer_info, true);
        }
    }

    // ------------------------------------------------------------------
    // Operations
    // ------------------------------------------------------------------

    /// Runs the AutoNAT probe for a node (§2.3): asks up to `probes`
    /// currently-online servers to dial back, then applies the verdict —
    /// more than three successful dial-backs upgrade a client to server;
    /// more than three failures keep it a client. Returns the verdict.
    /// (Instantaneous oracle of the dial-back exchange; the timing of
    /// AutoNAT is not part of any measured pipeline.)
    pub fn autonat_probe(&mut self, id: NodeId, probes: usize) -> crate::AutonatVerdict {
        use crate::{AutonatState, AutonatVerdict};
        let mut state = AutonatState::new();
        // The node is dialable iff it is not NAT'ed (its `is_server`
        // ground truth) and currently online.
        let reachable = self.nodes[id].is_server && self.nodes[id].online;
        let helpers: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&h| h != id && self.is_dialable(h))
            .take(probes)
            .collect();
        let mut verdict = AutonatVerdict::Undecided;
        for _h in helpers {
            verdict = state.record(reachable);
            if verdict != AutonatVerdict::Undecided {
                break;
            }
        }
        match verdict {
            AutonatVerdict::Public => {
                self.nodes[id].node.dht.set_mode(kademlia::behaviour::DhtMode::Server)
            }
            AutonatVerdict::Private => {
                self.nodes[id].node.dht.set_mode(kademlia::behaviour::DhtMode::Client)
            }
            AutonatVerdict::Undecided => {}
        }
        verdict
    }

    /// Imports content at a node (local, Figure 3 step 1) and returns the
    /// root CID.
    pub fn import_content(&mut self, id: NodeId, data: &Bytes) -> Cid {
        self.nodes[id].node.add_content(data).root
    }

    /// Starts publishing `cid` from `id` (Figure 3, steps 2–3). Returns the
    /// operation id; a [`PublishReport`] lands in
    /// [`IpfsNetwork::publish_reports`] when it completes.
    pub fn publish(&mut self, id: NodeId, cid: Cid) -> OpId {
        self.publish_inner(id, cid, false)
    }

    /// Oracle setup helper: instantly stores provider records for `cid`
    /// (pointing at `provider`) on the k closest servers, without
    /// consuming virtual time. Used to pre-seed large content catalogs
    /// (e.g. the gateway workload) where simulating thousands of full
    /// publication walks would only burn events, not add fidelity. Not
    /// used by any timed experiment.
    pub fn seed_provider_record(&mut self, provider: NodeId, cid: &Cid) {
        let key = Key::from_cid(cid);
        let provider_info = self.nodes[provider].node.info().clone();
        let now = self.now();
        let k = self.cfg.node.replication;
        let mut targets: Vec<(kademlia::Distance, NodeId)> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_server)
            .map(|(i, n)| (Key::from_peer(n.node.peer_id()).distance(&key), i))
            .collect();
        targets.sort_by_key(|a| a.0);
        for (_, id) in targets.into_iter().take(k) {
            let from = provider_info.clone();
            self.nodes[id].node.dht.handle_request(
                &from,
                true,
                Request::AddProvider { key, provider: from.clone() },
                now,
            );
        }
    }

    /// Publishes a signed IPNS record from `id` into the DHT: a Closest
    /// walk to the name's key, then a PUT_VALUE batch to the k closest
    /// servers (§3.3). Records are validated and arbitrated (by sequence
    /// number) at each storing node.
    pub fn publish_ipns(&mut self, id: NodeId, record: &IpnsRecord) -> OpId {
        let op = OpId(self.next_op);
        self.next_op += 1;
        self.ops.insert(
            op,
            OpState::PublishIpns {
                node: id,
                name: record.name.clone(),
                value: record.encode(),
                t0: self.now(),
                t_walk_end: None,
                outstanding: 0,
                stored: 0,
            },
        );
        self.metrics.incr(names::IPNS_PUBLISH_OPS);
        let t0 = self.now();
        self.tracer.record_with(op, t0, || TraceEventKind::OpStarted { kind: "ipns_publish" });
        self.tracer.record_with(op, t0, || TraceEventKind::PhaseEntered { phase: "walk" });
        self.dtrace.note_op(op, id);
        let key = Key::from_peer(&record.name);
        let (qid, outputs) = self.nodes[id].node.dht.start_query(key, QueryTarget::Closest);
        self.query_owner.insert((id, qid), op);
        self.process_dht_outputs(id, outputs);
        op
    }

    /// Resolves an IPNS name from `id`: a Value walk that terminates on
    /// the first record found; the result is validated locally and cached
    /// in the node's IPNS store.
    pub fn resolve_ipns(&mut self, id: NodeId, name: &PeerId) -> OpId {
        let op = OpId(self.next_op);
        self.next_op += 1;
        self.ops.insert(op, OpState::ResolveIpns { node: id, name: name.clone(), t0: self.now() });
        self.metrics.incr(names::IPNS_RESOLVE_OPS);
        let t0 = self.now();
        self.tracer.record_with(op, t0, || TraceEventKind::OpStarted { kind: "ipns_resolve" });
        self.tracer.record_with(op, t0, || TraceEventKind::PhaseEntered { phase: "walk" });
        self.dtrace.note_op(op, id);
        let key = Key::from_peer(name);
        let (qid, outputs) = self.nodes[id].node.dht.start_query(key, QueryTarget::Value);
        self.query_owner.insert((id, qid), op);
        self.process_dht_outputs(id, outputs);
        op
    }

    fn publish_inner(&mut self, id: NodeId, cid: Cid, silent: bool) -> OpId {
        let op = OpId(self.next_op);
        self.next_op += 1;
        let t0 = self.now();
        self.ops.insert(
            op,
            OpState::Publish {
                node: id,
                cid: cid.clone(),
                t0,
                t_walk_end: None,
                phase: PublishPhase::Walk,
                silent,
                walk_rpcs: 0,
                walk_failures: 0,
            },
        );
        if !silent {
            self.metrics.incr(names::PUBLISH_OPS);
        }
        self.tracer.record_with(op, t0, || TraceEventKind::OpStarted { kind: "publish" });
        self.tracer.record_with(op, t0, || TraceEventKind::PhaseEntered { phase: "walk" });
        self.dtrace.note_op(op, id);
        let key = Key::from_cid(&cid);
        let (qid, outputs) = self.nodes[id].node.dht.start_query(key, QueryTarget::Closest);
        self.query_owner.insert((id, qid), op);
        self.process_dht_outputs(id, outputs);
        if self.cfg.auto_republish {
            self.arm_reprovide(id, cid);
        }
        op
    }

    /// Registers `cid` in `id`'s provided set and arms whatever keeps it
    /// alive: in sweep mode the single per-node sweep timer (armed once,
    /// when the first CID arrives); in per-CID mode a dedicated republish
    /// timer chain. Republishing content that already has a pending timer
    /// replaces it instead of stacking chains.
    fn arm_reprovide(&mut self, id: NodeId, cid: Cid) {
        let key = Key::from_cid(&cid);
        if self.cfg.reprovide_sweep {
            self.nodes[id]
                .provided
                .insert(key, ProvidedEntry { cid, timer: None, deferred: false });
            if self.nodes[id].sweep_timer.is_none() && !self.nodes[id].sweep_deferred {
                let timer = self.queue.schedule_cancellable(
                    self.cfg.node.republish_interval,
                    NetEvent::ReprovideSweep { node: id },
                );
                self.nodes[id].sweep_timer = Some(timer);
            }
        } else {
            if let Some(old) = self.nodes[id].provided.get_mut(&key).and_then(|e| e.timer.take()) {
                self.queue.cancel(old);
            }
            let timer = self.queue.schedule_cancellable(
                self.cfg.node.republish_interval,
                NetEvent::Republish { node: id, cid: cid.clone() },
            );
            self.nodes[id]
                .provided
                .insert(key, ProvidedEntry { cid, timer: Some(timer), deferred: false });
        }
    }

    /// The keyspace-ordered reprovide sweep: walks `id`'s provided CIDs in
    /// DHT-key order, groups them into keyspace neighborhoods by the top
    /// [`NetworkConfig::reprovide_batch_bits`] bits of their key, and runs
    /// one Closest walk per non-empty neighborhood, storing the whole
    /// group with batched ADD_PROVIDER RPCs — one walk + k messages per
    /// *neighborhood* instead of per CID. This is the maintenance loop
    /// go-ipfs's accelerated DHT client uses to survive million-record
    /// reprovides (§3.1's 12 h cycle).
    fn run_reprovide_sweep(&mut self, id: NodeId) {
        self.nodes[id].sweep_timer = None;
        if !self.nodes[id].online {
            // Raced with a churn-offline between scheduling and dispatch:
            // park the sweep; rejoin runs it immediately.
            self.nodes[id].sweep_deferred = true;
            self.metrics.incr(names::PROVIDER_REPUBLISH_DEFERRED);
            return;
        }
        // Unpinned CIDs leave the provided set; their records age out.
        let keep: Vec<(Key, Cid)> = {
            let sim = &mut self.nodes[id];
            let store = &sim.node.store;
            sim.provided.retain(|_, e| store.has(&e.cid));
            sim.provided.iter().map(|(k, e)| (*k, e.cid.clone())).collect()
        };
        if keep.is_empty() {
            return; // nothing provided: the sweep chain ends here
        }
        self.metrics.incr(names::PROVIDER_SWEEP_RUNS);
        self.metrics.add(names::PROVIDER_SWEEP_CIDS, keep.len() as u64);
        // Kept comparable across modes: one "republish" per maintained CID
        // per cycle, however the messages are amortized.
        self.metrics.add(names::PROVIDER_REPUBLISHES, keep.len() as u64);
        // Group by keyspace prefix. BTreeMap iteration handed us the CIDs
        // already key-sorted, so each group is a contiguous, ordered run.
        let bits = u32::from(self.cfg.reprovide_batch_bits.min(16));
        let mut batches: Vec<(Key, Vec<Cid>)> = Vec::new();
        let mut last_prefix: Option<u16> = None;
        for (key, cid) in keep {
            let wide = u16::from_be_bytes([key.0[0], key.0[1]]);
            let prefix = if bits == 0 { 0 } else { wide >> (16 - bits) };
            if last_prefix != Some(prefix) {
                last_prefix = Some(prefix);
                batches.push((key, Vec::new()));
            }
            batches.last_mut().unwrap().1.push(cid);
        }
        for (first_key, cids) in batches {
            self.metrics.incr(names::PROVIDER_SWEEP_BATCHES);
            let op = OpId(self.next_op);
            self.next_op += 1;
            self.ops.insert(op, OpState::SweepBatch { node: id, cids, outstanding: 0 });
            self.dtrace.note_op(op, id);
            // One walk toward the neighborhood's first key serves every
            // CID in the batch: within a 2^-bits slice of the keyspace,
            // the k closest peers are (to good approximation) shared.
            let (qid, outputs) =
                self.nodes[id].node.dht.start_query(first_key, QueryTarget::Closest);
            self.query_owner.insert((id, qid), op);
            self.process_dht_outputs(id, outputs);
        }
        // Re-arm: one timer maintains the whole provided set.
        let timer = self.queue.schedule_cancellable(
            self.cfg.node.republish_interval,
            NetEvent::ReprovideSweep { node: id },
        );
        self.nodes[id].sweep_timer = Some(timer);
    }

    /// Starts retrieving `cid` at `id` (Figure 3, steps 4–6). Returns the
    /// operation id; a [`RetrieveReport`] lands in
    /// [`IpfsNetwork::retrieve_reports`] when it completes.
    pub fn retrieve(&mut self, id: NodeId, cid: Cid) -> OpId {
        let op = OpId(self.next_op);
        self.next_op += 1;
        let t0 = self.now();
        self.ops.insert(
            op,
            OpState::Retrieve {
                node: id,
                cid: cid.clone(),
                t0,
                phase: RetrievePhase::BitswapProbe,
                t_bitswap_end: None,
                t_provider_end: None,
                t_peer_end: None,
                t_fetch_start: None,
                probe_session: None,
                fetch_session: None,
                via_bitswap: false,
                addrbook_hit: false,
                probe_havers: Vec::new(),
                fetch_candidates: Vec::new(),
                walks_outstanding: 0,
            },
        );
        self.metrics.incr(names::RETRIEVE_OPS);
        self.tracer.record_with(op, t0, || TraceEventKind::OpStarted { kind: "retrieve" });
        self.tracer.record_with(op, t0, || TraceEventKind::PhaseEntered { phase: "bitswap_probe" });
        self.dtrace.note_op(op, id);
        // Opportunistic Bitswap: broadcast WANT-HAVE to connected peers
        // (§3.2, Figure 3 step 4). Idle connections expired first: the
        // connection manager would have closed them long ago, so they must
        // not feed the probe.
        self.expire_idle_connections(id, t0);
        let connected: Vec<PeerId> = self.nodes[id]
            .connections
            .peers()
            .map(|c| self.nodes[c].node.peer_id().clone())
            .collect();
        let session_cfg = self.session_config();
        let sim_node = &mut self.nodes[id];
        sim_node.node.bitswap.set_clock(t0.as_nanos());
        let (session, outputs) = sim_node.node.bitswap.start_session_with(
            cid,
            connected,
            session_cfg,
            &mut sim_node.node.store,
        );
        self.session_owner.insert((id, session), op);
        if let Some(OpState::Retrieve { probe_session, .. }) = self.ops.get_mut(&op) {
            *probe_session = Some(session);
        }
        let ctx = self.op_ctx(id, op);
        self.process_bitswap_outputs(id, outputs, ctx);
        // The probe either already completed (content local) or runs
        // against the 1 s deadline.
        let still_probing = matches!(
            self.ops.get(&op),
            Some(OpState::Retrieve { phase: RetrievePhase::BitswapProbe, .. })
        );
        if still_probing {
            self.queue
                .schedule(self.cfg.bitswap_probe_timeout, NetEvent::BitswapProbeTimeout { op });
            self.tracer
                .record_with(op, t0, || TraceEventKind::TimerArmed { timer: "bitswap_probe" });
            if self.cfg.parallel_dht_and_bitswap {
                self.begin_provider_walk(op);
            }
        }
        op
    }

    /// Runs the simulation until `deadline` (inclusive of events at it).
    /// Scripted fault boundaries due within the window apply at their
    /// exact virtual instants, interleaved with event dispatch.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            if let Some(fault_at) = self.faults.next_at() {
                if fault_at <= deadline && self.queue.peek_time().is_none_or(|t| fault_at <= t) {
                    let now = self.queue.advance_to(fault_at);
                    self.apply_due_faults(now);
                    continue;
                }
            }
            let Some(t) = self.queue.peek_time() else { break };
            if t > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.events_processed += 1;
            self.handle(ev.at, ev.event);
        }
    }

    /// Runs for `d` more virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now() + d;
        self.run_until(deadline);
    }

    /// Runs until no operations remain active (or the queue drains).
    pub fn run_until_quiet(&mut self) {
        while !self.ops.is_empty() {
            if let Some(fault_at) = self.faults.next_at() {
                if self.queue.peek_time().is_none_or(|t| fault_at <= t) {
                    let now = self.queue.advance_to(fault_at);
                    self.apply_due_faults(now);
                    continue;
                }
            }
            let Some(ev) = self.queue.pop() else { break };
            self.events_processed += 1;
            self.handle(ev.at, ev.event);
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Installs a scripted fault plan, replacing any previous one. Events
    /// whose instant has already passed apply at the next run call (the
    /// oracle clamps, it never time-travels). Same seed + same plan ⇒
    /// byte-identical run: the oracle owns no randomness, and the fault
    /// paths draw from the engine RNG only while faults are active.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = FaultOracle::new(plan);
    }

    /// Read access to the active fault state (tests, harnesses).
    pub fn fault_oracle(&self) -> &FaultOracle {
        &self.faults
    }

    /// Applies every scripted fault event due at `now`: folds topology
    /// events into the oracle, executes crash waves, severs warm
    /// connections that a new partition cut, and meters everything.
    fn apply_due_faults(&mut self, now: SimTime) {
        let due = self.faults.take_due(now);
        for event in due {
            self.metrics.incr(match event.label() {
                "partition_start" => names::FAULT_PARTITION_STARTS,
                "partition_end" => names::FAULT_PARTITION_HEALS,
                "degrade_start" => names::FAULT_DEGRADE_STARTS,
                "degrade_end" => names::FAULT_DEGRADE_ENDS,
                "dial_fail_spike_start" => names::FAULT_DIAL_SPIKE_STARTS,
                "dial_fail_spike_end" => names::FAULT_DIAL_SPIKE_ENDS,
                _ => names::FAULT_CRASH_WAVES,
            });
            let new_partition = matches!(event, FaultEvent::PartitionStart { .. });
            if !self.faults.apply(&event) {
                // Node-scoped event the oracle hands back to the driver.
                match event {
                    FaultEvent::CrashWave { fraction, restart_after } => {
                        self.crash_wave(now, fraction, restart_after);
                    }
                    FaultEvent::CrashNodes { ids, restart_after } => {
                        self.crash_nodes(now, &ids, restart_after);
                    }
                    _ => {}
                }
            } else if new_partition {
                // A partition just came up: tear down every warm connection
                // now crossing it. Without this the 1 s Bitswap probe would
                // keep riding pre-partition connections straight across the
                // cut (the transport would have reset them).
                self.sever_partitioned_connections();
            }
        }
        self.metrics.set(names::FAULT_PARTITIONS_ACTIVE, self.faults.partitions_active() as u64);
    }

    /// Drops every warm connection whose endpoints an active partition now
    /// separates (both directions at once — the sets are symmetric).
    fn sever_partitioned_connections(&mut self) {
        let mut cut: Vec<(NodeId, NodeId)> = Vec::new();
        for a in 0..self.nodes.len() {
            let ra = self.nodes[a].region;
            for b in self.nodes[a].connections.peers() {
                if a < b && self.faults.blocked(ra, self.nodes[b].region) {
                    cut.push((a, b));
                }
            }
        }
        for (a, b) in cut {
            self.nodes[a].connections.remove(b);
            self.nodes[b].connections.remove(a);
            self.metrics.incr(names::FAULT_CONNS_SEVERED);
        }
    }

    /// Crashes a deterministic, seed-stable sample of the online
    /// population peers and schedules their restarts through the normal
    /// churn path (so recovery runs the join-time announcement).
    fn crash_wave(&mut self, now: SimTime, fraction: f64, restart_after: SimDuration) {
        let mut online: Vec<NodeId> =
            (0..self.crashable).filter(|&i| self.nodes[i].online).collect();
        let count = ((online.len() as f64) * fraction).round() as usize;
        let count = count.min(online.len());
        // Partial Fisher–Yates: the first `count` slots become the victims.
        for k in 0..count {
            let j = self.rng.random_range(k..online.len());
            online.swap(k, j);
        }
        for &id in &online[..count] {
            self.on_churn(id, false);
            self.metrics.incr(names::FAULT_NODES_CRASHED);
            self.queue.schedule_at(now + restart_after, NetEvent::Churn { node: id, online: true });
        }
    }

    /// Crashes the named nodes (targeted fault, e.g. a transfer's provider
    /// dying mid-DAG). No randomness: the scenario picked its victims.
    fn crash_nodes(&mut self, now: SimTime, ids: &[usize], restart_after: SimDuration) {
        for &id in ids {
            if id >= self.nodes.len() || !self.nodes[id].online {
                continue;
            }
            self.on_churn(id, false);
            self.metrics.incr(names::FAULT_NODES_CRASHED);
            self.queue.schedule_at(now + restart_after, NetEvent::Churn { node: id, online: true });
        }
    }

    /// Whether a message between two nodes dies at delivery time because a
    /// partition now separates them (covers messages already in flight
    /// when the partition started). Metered when it bites.
    fn cut_in_flight(&mut self, a: NodeId, b: NodeId) -> bool {
        if !self.faults.has_active_faults() {
            return false;
        }
        let blocked = self.faults.blocked(self.nodes[a].region, self.nodes[b].region);
        if blocked {
            self.metrics.incr(names::FAULT_MESSAGES_CUT);
        }
        blocked
    }

    /// Whether an outbound message is lost to an active degradation on the
    /// path. Draws from the engine RNG only when a lossy window covers the
    /// path, so fault-free runs stay byte-identical.
    fn degraded_loss(&mut self, a: NodeId, b: NodeId) -> bool {
        if !self.faults.has_active_faults() {
            return false;
        }
        let p = self.faults.loss_prob(self.nodes[a].region, self.nodes[b].region);
        if p > 0.0 && self.rng.random_range(0.0..1.0) < p {
            self.metrics.incr(names::FAULT_MESSAGES_LOST);
            return true;
        }
        false
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, now: SimTime, event: NetEvent) {
        match event {
            NetEvent::Churn { node, online } => self.on_churn(node, online),
            NetEvent::RpcArrive { from, to, query, request, ctx } => {
                if self.cut_in_flight(from, to) {
                    return; // requester's guard timeout will fire
                }
                self.on_rpc_arrive(now, from, to, query, *request, ctx)
            }
            NetEvent::RpcResponse { to, query, from_peer, response } => {
                if let Some(responder) = self.resolve(&from_peer) {
                    if self.cut_in_flight(responder, to) {
                        return; // requester's guard timeout will fire
                    }
                }
                self.pending_rpcs.remove(&(to, query, from_peer.clone()));
                self.metrics.incr_handle(self.hot.dht_rpc_ok);
                if self.tracer.is_enabled() {
                    if let Some(&op) = self.query_owner.get(&(to, query)) {
                        let peer = self.resolve(&from_peer).unwrap_or(usize::MAX);
                        self.tracer.record_with(op, now, || TraceEventKind::RpcOk { peer });
                    }
                }
                let outputs = self.nodes[to].node.dht.on_response(query, &from_peer, &response);
                // Remember responder addresses (§3.2 address book).
                for info in response.closer() {
                    if !info.addrs.is_empty() {
                        self.nodes[to].node.addr_book.insert(&info.peer, &info.addrs);
                    }
                }
                self.process_dht_outputs(to, outputs);
            }
            NetEvent::RpcFail { node, query, peer } => {
                if self.pending_rpcs.remove(&(node, query, peer.clone())) {
                    self.metrics.incr_handle(self.hot.dht_rpc_failed);
                    if self.tracer.is_enabled() {
                        if let Some(&op) = self.query_owner.get(&(node, query)) {
                            let p = self.resolve(&peer).unwrap_or(usize::MAX);
                            self.tracer
                                .record_with(op, now, || TraceEventKind::RpcFailed { peer: p });
                        }
                    }
                    let outputs = self.nodes[node].node.dht.on_failure(query, &peer);
                    self.process_dht_outputs(node, outputs);
                }
            }
            NetEvent::ProviderStoreArrive { from, to, key, provider } => {
                if self.cut_in_flight(from, to) {
                    return; // fire-and-forget: the record is simply lost
                }
                if self.nodes[to].online {
                    let from_info = self.nodes[from].node.info().clone();
                    let from_is_server = self.nodes[from].is_server;
                    let request = Request::AddProvider { key, provider };
                    self.metrics.incr_handle(self.hot.rpc_recv[request_kind(&request)]);
                    self.metrics.incr_handle(self.hot.provider_records_stored);
                    self.nodes[to].node.dht.handle_request(
                        &from_info,
                        from_is_server,
                        request,
                        now,
                    );
                }
            }
            NetEvent::ProviderStoreSettled { op, ok } => self.on_provider_settled(now, op, ok),
            NetEvent::BitswapArrive { from, to, message, ctx } => {
                if !self.nodes[to].online || self.cut_in_flight(from, to) {
                    return; // dropped; guard timers handle the fallout
                }
                self.metrics.incr_handle(self.hot.bitswap_recv[bitswap_kind(&message)]);
                let from_peer = self.nodes[from].node.peer_id().clone();
                let n = &mut self.nodes[to];
                n.node.bitswap.set_clock(now.as_nanos());
                let outputs =
                    n.node.bitswap.handle_inbound(&from_peer, *message, &mut n.node.store);
                // Replies echo the inbound causal context: a responder's
                // BLOCK carries the op's trace id even though the responder
                // owns no session for it.
                self.process_bitswap_outputs(to, outputs, ctx);
            }
            NetEvent::BitswapProbeTimeout { op } => self.on_probe_timeout(now, op),
            NetEvent::FetchConnected { op, provider } => self.on_fetch_connected(op, provider),
            NetEvent::FetchTimeout { op } => {
                if self.ops.contains_key(&op) {
                    self.finish_retrieve(now, op, false);
                }
            }
            NetEvent::Republish { node, cid } => {
                // This firing consumes its chain entry — an O(log n) map
                // removal where the old Vec paid an O(n) position scan.
                let key = Key::from_cid(&cid);
                self.nodes[node].provided.remove(&key);
                if !self.nodes[node].node.store.has(&cid) {
                    // Unpinned since the timer was armed: the chain ends.
                } else if self.nodes[node].online {
                    self.metrics.incr(names::PROVIDER_REPUBLISHES);
                    self.publish_inner(node, cid, true);
                } else {
                    // Raced with a churn-offline between scheduling and
                    // dispatch: park the chain instead of dropping it.
                    self.metrics.incr(names::PROVIDER_REPUBLISH_DEFERRED);
                    self.nodes[node]
                        .provided
                        .insert(key, ProvidedEntry { cid, timer: None, deferred: true });
                }
            }
            NetEvent::ReprovideSweep { node } => self.run_reprovide_sweep(node),
            NetEvent::ProviderBatchArrive { from, to, keys, provider } => {
                if self.cut_in_flight(from, to) {
                    return; // fire-and-forget: the whole batch is lost
                }
                if self.nodes[to].online {
                    let from_info = self.nodes[from].node.info().clone();
                    let from_is_server = self.nodes[from].is_server;
                    let request = Request::AddProviderBatch { keys: (*keys).clone(), provider };
                    self.metrics.incr_handle(self.hot.rpc_recv[request_kind(&request)]);
                    self.metrics.add_handle(self.hot.provider_records_stored, keys.len() as u64);
                    self.nodes[to].node.dht.handle_request(
                        &from_info,
                        from_is_server,
                        request,
                        now,
                    );
                }
            }
            NetEvent::RefreshTable { node } => {
                self.nodes[node].refresh_timer = None;
                if self.nodes[node].online {
                    self.announce_join(node);
                    // Refresh doubles as the store's GC tick: drop provider
                    // records past the 24 h expiry (§3.1).
                    let expired = self.nodes[node].node.dht.expire_records(now);
                    self.metrics.add(names::PROVIDER_RECORDS_EXPIRED, expired as u64);
                    if let Some(interval) = self.cfg.table_refresh_interval {
                        self.nodes[node].refresh_timer = Some(
                            self.queue
                                .schedule_cancellable(interval, NetEvent::RefreshTable { node }),
                        );
                    }
                }
                // Offline nodes stop re-arming; churn-online restarts the
                // chain so a dead node never keeps timers in the scheduler.
            }
            NetEvent::ValueStoreArrive { from, to, key, value } => {
                if self.cut_in_flight(from, to) {
                    return; // lost in flight; the publisher already settled
                }
                if self.nodes[to].online {
                    let from_info = self.nodes[from].node.info().clone();
                    let from_is_server = self.nodes[from].is_server;
                    let request = Request::PutValue { key, value };
                    self.metrics.incr_handle(self.hot.rpc_recv[request_kind(&request)]);
                    self.metrics.incr(names::IPNS_RECORDS_STORED);
                    self.nodes[to].node.dht.handle_request(
                        &from_info,
                        from_is_server,
                        request,
                        now,
                    );
                }
            }
            NetEvent::ValueStoreSettled { op, ok } => self.on_value_settled(now, op, ok),
        }
    }

    fn on_value_settled(&mut self, now: SimTime, op: OpId, ok: bool) {
        let mut finalize = false;
        if let Some(OpState::PublishIpns { outstanding, stored, .. }) = self.ops.get_mut(&op) {
            *outstanding -= 1;
            if ok {
                *stored += 1;
            }
            finalize = *outstanding == 0;
        }
        if finalize {
            self.finish_ipns_publish(now, op);
        }
    }

    fn finish_ipns_publish(&mut self, now: SimTime, op: OpId) {
        let Some(OpState::PublishIpns { node, name, t0, t_walk_end, stored, .. }) =
            self.ops.remove(&op)
        else {
            return;
        };
        let t_walk = t_walk_end.unwrap_or(now);
        let ok = stored > 0;
        self.metrics.incr(if ok {
            names::IPNS_PUBLISH_SUCCESS
        } else {
            names::IPNS_PUBLISH_FAILED
        });
        self.tracer.record_with(op, now, || TraceEventKind::OpFinished { success: ok });
        self.ipns_publish_reports.push(IpnsPublishReport {
            op,
            node,
            name,
            total: now - t0,
            dht_walk: t_walk - t0,
            records_stored: stored,
            success: ok,
        });
        self.dtrace.finish_op(op);
    }

    fn finish_ipns_resolve(&mut self, now: SimTime, op: OpId, value: Option<Vec<u8>>) {
        let Some(OpState::ResolveIpns { node, name, t0 }) = self.ops.remove(&op) else {
            return;
        };
        // Validate the record locally (signature, name binding, expiry) —
        // the resolver never trusts the serving peer (§3.3).
        let record = value
            .and_then(|v| IpnsRecord::decode(&v))
            .filter(|r| r.name == name && r.validate(now).is_ok());
        if let Some(r) = &record {
            let _ = self.nodes[node].node.ipns.put(r.clone(), now);
        }
        let success = record.is_some();
        self.metrics.incr(if success {
            names::IPNS_RESOLVE_SUCCESS
        } else {
            names::IPNS_RESOLVE_FAILED
        });
        self.tracer.record_with(op, now, || TraceEventKind::OpFinished { success });
        self.ipns_resolve_reports.push(IpnsResolveReport {
            op,
            node,
            name,
            total: now - t0,
            record,
            success,
        });
        self.dtrace.finish_op(op);
    }

    fn on_churn(&mut self, id: NodeId, online: bool) {
        self.nodes[id].online = online;
        self.metrics.incr(if online { names::CHURN_ONLINE } else { names::CHURN_OFFLINE });
        if online {
            self.announce_join(id);
            // Restart the refresh chain the node dropped when it went
            // offline (armed lazily here rather than ticking while dead).
            if let Some(interval) = self.cfg.table_refresh_interval {
                if self.nodes[id].refresh_timer.is_none() {
                    self.nodes[id].refresh_timer = Some(
                        self.queue
                            .schedule_cancellable(interval, NetEvent::RefreshTable { node: id }),
                    );
                }
            }
            // Resume reprovide work parked while offline. go-ipfs
            // reprovides on startup, so parked content reannounces
            // immediately instead of waiting out a full interval.
            if self.nodes[id].sweep_deferred {
                self.nodes[id].sweep_deferred = false;
                self.metrics.incr(names::PROVIDER_REPUBLISH_RESUMED);
                let timer = self
                    .queue
                    .schedule_cancellable(SimDuration::ZERO, NetEvent::ReprovideSweep { node: id });
                self.nodes[id].sweep_timer = Some(timer);
            }
            // Per-CID chains: each deferred entry re-announces now.
            // BTreeMap order keeps the event-scheduling order (and thus
            // the RNG stream) deterministic.
            let mut deferred = Vec::new();
            for entry in self.nodes[id].provided.values_mut() {
                if entry.deferred {
                    entry.deferred = false;
                    deferred.push(entry.cid.clone());
                }
            }
            for cid in deferred {
                self.metrics.incr(names::PROVIDER_REPUBLISH_RESUMED);
                self.queue.schedule(SimDuration::ZERO, NetEvent::Republish { node: id, cid });
            }
        } else {
            // A dead node must not keep timers alive in the scheduler:
            // stop the refresh chain and park pending reprovide work.
            if let Some(t) = self.nodes[id].refresh_timer.take() {
                self.queue.cancel(t);
            }
            if let Some(t) = self.nodes[id].sweep_timer.take() {
                self.queue.cancel(t);
                self.nodes[id].sweep_deferred = true;
                self.metrics.incr(names::PROVIDER_REPUBLISH_DEFERRED);
            }
            let mut parked = 0u64;
            for entry in self.nodes[id].provided.values_mut() {
                if let Some(timer) = entry.timer.take() {
                    self.queue.cancel(timer);
                    entry.deferred = true;
                    parked += 1;
                }
            }
            self.metrics.add(names::PROVIDER_REPUBLISH_DEFERRED, parked);
            // Dropped connections surface to Bitswap: each neighbour's
            // sessions re-queue wants that were in flight at the dead peer
            // onto their surviving candidates (§3.2 swarm resilience).
            // A no-op (zero messages, zero RNG draws) for neighbours with
            // no live session touching this peer, so runs without
            // fetch-phase faults are byte-identical.
            let dead_peer = self.nodes[id].node.peer_id().clone();
            let now = self.now();
            for p in self.nodes[id].connections.drain() {
                self.nodes[p].connections.remove(id);
                self.nodes[p].node.bitswap.set_clock(now.as_nanos());
                // Per-session grouping keeps each re-routed want attributed
                // to the op that owns the session, so the flight recorder
                // can name exactly which wants moved where and why.
                let grouped = self.nodes[p].node.bitswap.peer_disconnected_by_session(&dead_peer);
                for (session, outputs) in grouped {
                    let op = self.session_owner.get(&(p, session)).copied();
                    let ctx = op.map(|o| self.op_ctx(p, o)).unwrap_or(TraceCtx::NONE);
                    if self.dtrace.active() {
                        if let Some(op) = op {
                            self.dtrace.flag(op);
                            self.record_reroute_fragments(op, p, id, &outputs, now);
                        }
                    }
                    self.process_bitswap_outputs(p, outputs, ctx);
                }
            }
        }
    }

    fn on_rpc_arrive(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        query: QueryId,
        request: Request,
        ctx: TraceCtx,
    ) {
        if !self.nodes[to].online {
            return; // requester's guard timeout will fire
        }
        self.metrics.incr_handle(self.hot.rpc_recv[request_kind(&request)]);
        let from_info = self.nodes[from].node.info().clone();
        let from_is_server = self.nodes[from].is_server;
        let req_name = request.name();
        let response =
            self.nodes[to].node.dht.handle_request(&from_info, from_is_server, request, now);
        if let Some(response) = response {
            if self.dtrace.active() && !ctx.is_none() {
                // The server's own view of the request — handler time plus
                // the walk fan-out it computed — recorded as a child of the
                // requester's rpc span, even if the response is later lost.
                self.dtrace.record_span(
                    ctx.trace_id,
                    ctx.parent_span,
                    to,
                    Some(from),
                    "srv",
                    req_name,
                    response.forwarded_hops(),
                    0,
                    now,
                    now + self.cfg.server_processing,
                );
            }
            let delay = self.cfg.server_processing + self.one_way(to, from);
            if self.degraded_loss(to, from) {
                return; // requester's guard timeout will fire
            }
            let from_peer = self.nodes[to].node.peer_id().clone();
            self.queue.schedule(
                delay,
                NetEvent::RpcResponse { to: from, query, from_peer, response: Box::new(response) },
            );
        }
    }

    fn on_provider_settled(&mut self, now: SimTime, op: OpId, ok: bool) {
        let mut finalize = false;
        match self.ops.get_mut(&op) {
            Some(OpState::Publish {
                phase: PublishPhase::RpcBatch { outstanding, stored },
                ..
            }) => {
                *outstanding -= 1;
                if ok {
                    *stored += 1;
                }
                finalize = *outstanding == 0;
            }
            Some(OpState::SweepBatch { outstanding, .. }) => {
                *outstanding -= 1;
                if *outstanding == 0 {
                    // Sweep maintenance is silent: no publish report.
                    self.ops.remove(&op);
                    self.dtrace.finish_op(op);
                }
                return;
            }
            _ => {}
        }
        if finalize {
            self.finish_publish(now, op, true);
        }
    }

    fn on_probe_timeout(&mut self, now: SimTime, op: OpId) {
        // The 1 s timeout bounds *discovery*: if a neighbour has already
        // started delivering blocks, the transfer continues rather than
        // being cancelled mid-flight.
        let in_progress = {
            let Some(OpState::Retrieve { node, phase, probe_session, .. }) = self.ops.get(&op)
            else {
                return;
            };
            if *phase != RetrievePhase::BitswapProbe {
                return; // already advanced (e.g. satisfied via Bitswap)
            }
            probe_session
                .and_then(|s| self.nodes[*node].node.bitswap.session_state(s))
                .map(|st| st.received > 0)
                .unwrap_or(false)
        };
        if in_progress {
            // Guard the continuing transfer like any fetch.
            self.queue.schedule(self.cfg.fetch_timeout, NetEvent::FetchTimeout { op });
            return;
        }
        self.metrics.incr(names::BITSWAP_PROBE_TIMEOUTS);
        self.tracer.record_with(op, now, || TraceEventKind::TimerFired { timer: "bitswap_probe" });
        self.tracer
            .record_with(op, now, || TraceEventKind::PhaseEntered { phase: "provider_walk" });
        let action = {
            let Some(OpState::Retrieve {
                node,
                phase,
                probe_session,
                t_bitswap_end,
                probe_havers,
                ..
            }) = self.ops.get_mut(&op)
            else {
                return;
            };
            *t_bitswap_end = Some(now);
            *phase = RetrievePhase::ProviderWalk;
            match probe_session.take() {
                Some(session) => {
                    // Don't discard what the probe learned: peers that
                    // answered HAVE seed the fetch session's candidate set.
                    *probe_havers =
                        self.nodes[*node].node.bitswap.responsive_session_peers(session);
                    Action::CancelProbe { node: *node, session }
                }
                None => Action::Nothing,
            }
        };
        if let Action::CancelProbe { node, session } = action {
            self.session_owner.remove(&(node, session));
            self.drain_session_obs(node, session);
            let outputs = self.nodes[node].node.bitswap.cancel_session(session);
            let ctx = self.op_ctx(node, op);
            self.process_bitswap_outputs(node, outputs, ctx);
        }
        if !self.cfg.parallel_dht_and_bitswap {
            self.begin_provider_walk(op);
        }
    }

    fn begin_provider_walk(&mut self, op: OpId) {
        let Some(OpState::Retrieve { node, cid, .. }) = self.ops.get(&op) else {
            return;
        };
        let (node, cid) = (*node, cid.clone());
        let key = Key::from_cid(&cid);
        let (qid, outputs) = self.nodes[node].node.dht.start_query(key, QueryTarget::Providers);
        self.query_owner.insert((node, qid), op);
        self.process_dht_outputs(node, outputs);
    }

    // ------------------------------------------------------------------
    // DHT plumbing
    // ------------------------------------------------------------------

    fn process_dht_outputs(&mut self, id: NodeId, outputs: Vec<DhtOutput>) {
        for output in outputs {
            match output {
                DhtOutput::SendRequest { query, to, request } => {
                    self.send_query_rpc(id, query, to, request);
                }
                DhtOutput::QueryDone { query, outcome, stats } => {
                    if let Some(op) = self.query_owner.remove(&(id, query)) {
                        self.on_query_done(op, outcome, stats);
                    }
                }
            }
        }
    }

    fn send_query_rpc(
        &mut self,
        from: NodeId,
        query: QueryId,
        to: Arc<PeerInfo>,
        request: Request,
    ) {
        self.pending_rpcs.insert((from, query, to.peer.clone()));
        self.metrics.incr_handle(self.hot.rpc_sent[request_kind(&request)]);
        let mut ctx = TraceCtx::NONE;
        if self.tracer.is_enabled() {
            if let Some(&op) = self.query_owner.get(&(from, query)) {
                let now = self.now();
                let peer = self.resolve(&to.peer).unwrap_or(usize::MAX);
                let kind = request.name();
                self.tracer.record_with(op, now, || TraceEventKind::RpcSent { kind, peer });
                // The context numbering MUST advance in lockstep with the
                // `RpcSent` records just written: the stitcher re-derives
                // rpc span ids by counting those events on the requester.
                let tid = dtrace::trace_id(from, op);
                ctx = TraceCtx {
                    trace_id: tid,
                    parent_span: dtrace::rpc_span(tid, self.dtrace.next_rpc_seq(op)),
                };
            }
        }
        match self.dial(from, &to.peer) {
            Some((target, connect_delay)) => {
                let delay = connect_delay + self.one_way(from, target);
                if !self.degraded_loss(from, target) {
                    self.queue.schedule(
                        delay,
                        NetEvent::RpcArrive {
                            from,
                            to: target,
                            query,
                            request: Box::new(request),
                            ctx,
                        },
                    );
                }
                // Guard in case the target churns offline before arrival
                // (or the request was lost to a degraded link).
                self.queue.schedule(
                    self.cfg.node.rpc_timeout,
                    NetEvent::RpcFail { node: from, query, peer: to.peer.clone() },
                );
            }
            None => {
                let (delay, class) = self.sample_fail_delay();
                if self.tracer.is_enabled() {
                    if let Some(&op) = self.query_owner.get(&(from, query)) {
                        let now = self.now();
                        let peer = self.resolve(&to.peer).unwrap_or(usize::MAX);
                        self.tracer
                            .record_with(op, now, || TraceEventKind::DialFailed { peer, class });
                    }
                }
                self.queue.schedule(
                    delay,
                    NetEvent::RpcFail { node: from, query, peer: to.peer.clone() },
                );
            }
        }
    }

    fn on_query_done(&mut self, op: OpId, outcome: QueryOutcome, stats: QueryStats) {
        let now = self.now();
        self.tracer.record_with(op, now, || TraceEventKind::QueryConverged {
            rpcs: stats.rpcs_sent,
            responses: stats.responses,
            failures: stats.failures,
            hops: stats.max_hops,
        });
        self.metrics.observe_handle(self.hot.dht_walk_rpcs, stats.rpcs_sent as f64);
        // Probe sessions to cancel once the op-table borrow is released.
        let mut self_probe_cancel: Vec<(NodeId, SessionHandle)> = Vec::new();
        // Phase 1: update op state under a scoped borrow, extract an action.
        let action = {
            let Some(state) = self.ops.get_mut(&op) else { return };
            match state {
                OpState::Publish {
                    node, cid, t_walk_end, phase, walk_rpcs, walk_failures, ..
                } => {
                    *t_walk_end = Some(now);
                    *walk_rpcs = stats.rpcs_sent;
                    *walk_failures = stats.failures;
                    match outcome {
                        QueryOutcome::Closest(peers) if !peers.is_empty() => {
                            *phase = PublishPhase::RpcBatch { outstanding: peers.len(), stored: 0 };
                            Action::PublishBatch { node: *node, cid: cid.clone(), peers }
                        }
                        _ => Action::PublishFail,
                    }
                }
                OpState::SweepBatch { node, cids, outstanding } => match outcome {
                    QueryOutcome::Closest(peers) if !peers.is_empty() => {
                        *outstanding = peers.len();
                        Action::SweepStoreBatch { node: *node, cids: cids.clone(), peers }
                    }
                    _ => Action::SweepFail,
                },
                OpState::PublishIpns { node, name, value, t_walk_end, outstanding, .. } => {
                    *t_walk_end = Some(now);
                    match outcome {
                        QueryOutcome::Closest(peers) if !peers.is_empty() => {
                            *outstanding = peers.len();
                            Action::IpnsBatch {
                                node: *node,
                                key: Key::from_peer(name),
                                value: value.clone(),
                                peers,
                            }
                        }
                        _ => Action::IpnsFail,
                    }
                }
                OpState::ResolveIpns { .. } => match outcome {
                    QueryOutcome::Value { value, .. } => Action::IpnsResolved { value },
                    _ => Action::IpnsFail,
                },
                OpState::Retrieve {
                    node,
                    phase,
                    t_bitswap_end,
                    t_provider_end,
                    t_peer_end,
                    probe_session,
                    probe_havers,
                    walks_outstanding,
                    ..
                } => match (&*phase, outcome) {
                    // A provider-walk result can arrive while still in the
                    // Bitswap probe when the parallel-lookup ablation is on
                    // (§6.4): the DHT won the race, so cancel the probe and
                    // proceed.
                    (
                        RetrievePhase::ProviderWalk | RetrievePhase::BitswapProbe,
                        QueryOutcome::Providers { records, .. },
                    ) => {
                        if *phase == RetrievePhase::BitswapProbe {
                            t_bitswap_end.get_or_insert(now);
                            if let Some(session) = probe_session.take() {
                                // Cancelled out-of-band below (phase 2 needs
                                // fresh borrows); stash in the fetch path,
                                // carrying any peers the probe turned up.
                                *probe_havers = self.nodes[*node]
                                    .node
                                    .bitswap
                                    .responsive_session_peers(session);
                                self_probe_cancel.push((*node, session));
                            }
                        }
                        *t_provider_end = Some(now);
                        // The whole provider set seeds the fetch swarm
                        // (deduped, order-preserving, capped) instead of
                        // just the first record.
                        let mut unique: Vec<&kademlia::ProviderRecord> = Vec::new();
                        for r in &records {
                            if !unique.iter().any(|u| u.provider == r.provider) {
                                unique.push(r);
                            }
                        }
                        unique.truncate(self.cfg.max_fetch_providers.max(1));
                        let primary_carries =
                            self.cfg.provider_records_carry_addrs && !unique[0].addrs.is_empty();
                        if primary_carries {
                            *t_peer_end = Some(now);
                            *phase = RetrievePhase::Fetch;
                            Action::Fetch {
                                node: *node,
                                providers: unique
                                    .iter()
                                    .filter(|r| !r.addrs.is_empty())
                                    .map(|r| {
                                        Arc::new(PeerInfo::new(r.provider.clone(), r.addrs.clone()))
                                    })
                                    .collect(),
                            }
                        } else {
                            // Defer the address-book lookups to phase 2
                            // (they need a different borrow); stash intent.
                            Action::PeerWalk {
                                node: *node,
                                providers: unique.iter().map(|r| r.provider.clone()).collect(),
                            }
                        }
                    }
                    (RetrievePhase::PeerWalk, QueryOutcome::Peer(Some(info))) => {
                        *walks_outstanding = walks_outstanding.saturating_sub(1);
                        *t_peer_end = Some(now);
                        *phase = RetrievePhase::Fetch;
                        Action::Fetch { node: *node, providers: vec![info] }
                    }
                    // A secondary provider's walk resolved after the swarm
                    // started: dial it into the running session.
                    (RetrievePhase::Fetch, QueryOutcome::Peer(Some(info))) => {
                        *walks_outstanding = walks_outstanding.saturating_sub(1);
                        Action::JoinFetch { node: *node, provider: info }
                    }
                    (RetrievePhase::PeerWalk, QueryOutcome::Peer(None)) => {
                        *walks_outstanding = walks_outstanding.saturating_sub(1);
                        if *walks_outstanding == 0 {
                            Action::RetrieveFail
                        } else {
                            Action::Nothing
                        }
                    }
                    (RetrievePhase::Fetch, QueryOutcome::Peer(None)) => {
                        *walks_outstanding = walks_outstanding.saturating_sub(1);
                        Action::Nothing
                    }
                    _ => Action::RetrieveFail,
                },
            }
        };
        // Phase 2: perform the action with fresh borrows.
        for (node, session) in self_probe_cancel {
            self.session_owner.remove(&(node, session));
            self.drain_session_obs(node, session);
            let outputs = self.nodes[node].node.bitswap.cancel_session(session);
            let ctx = self.op_ctx(node, op);
            self.process_bitswap_outputs(node, outputs, ctx);
        }
        match action {
            Action::PublishBatch { node, cid, peers } => {
                self.tracer
                    .record_with(op, now, || TraceEventKind::PhaseEntered { phase: "rpc_batch" });
                let provider = Arc::clone(self.nodes[node].node.info());
                let key = Key::from_cid(&cid);
                for target in peers {
                    self.send_provider_store(op, node, target, key, Arc::clone(&provider));
                }
            }
            Action::PublishFail => self.finish_publish(now, op, false),
            Action::SweepStoreBatch { node, cids, peers } => {
                // One batched ADD_PROVIDER per closest peer carries every
                // CID in the neighborhood — k messages for the whole
                // batch instead of k per CID.
                let provider = Arc::clone(self.nodes[node].node.info());
                let keys: Arc<Vec<Key>> = Arc::new(cids.iter().map(Key::from_cid).collect());
                for target in peers {
                    self.send_provider_batch(
                        op,
                        node,
                        target,
                        Arc::clone(&keys),
                        Arc::clone(&provider),
                    );
                }
            }
            Action::SweepFail => {
                // The walk found nobody to store at: these CIDs miss this
                // refresh round and retry at the next sweep (their records
                // survive — expiry is 24 h against a 12 h sweep cadence).
                self.metrics.incr(names::PROVIDER_SWEEP_BATCH_FAILED);
                self.ops.remove(&op);
                self.dtrace.finish_op(op);
            }
            Action::IpnsBatch { node, key, value, peers } => {
                self.tracer
                    .record_with(op, now, || TraceEventKind::PhaseEntered { phase: "rpc_batch" });
                for target in peers {
                    self.send_value_store(op, node, target, key, value.clone());
                }
            }
            Action::IpnsFail => match self.ops.get(&op) {
                Some(OpState::PublishIpns { .. }) => self.finish_ipns_publish(now, op),
                Some(OpState::ResolveIpns { .. }) => self.finish_ipns_resolve(now, op, None),
                _ => {}
            },
            Action::IpnsResolved { value } => self.finish_ipns_resolve(now, op, Some(value)),
            Action::PeerWalk { node, providers } => {
                // §3.2: check the address book before the second walk —
                // for every provider in the swarm. Book hits dial now;
                // misses get their own peer-record walks and join the
                // fetch as they resolve.
                let mut dial_now: Vec<Arc<PeerInfo>> = Vec::new();
                let mut to_walk: Vec<PeerId> = Vec::new();
                let mut primary_hit = false;
                for (i, provider) in providers.into_iter().enumerate() {
                    if let Some(addrs) = self.nodes[node].node.addr_book.lookup(&provider) {
                        if i == 0 {
                            primary_hit = true;
                        }
                        dial_now.push(Arc::new(PeerInfo::new(provider, addrs)));
                    } else {
                        to_walk.push(provider);
                    }
                }
                if !dial_now.is_empty() {
                    if let Some(OpState::Retrieve {
                        phase,
                        t_peer_end,
                        addrbook_hit,
                        walks_outstanding,
                        ..
                    }) = self.ops.get_mut(&op)
                    {
                        *t_peer_end = Some(now);
                        *phase = RetrievePhase::Fetch;
                        *addrbook_hit = primary_hit;
                        *walks_outstanding = to_walk.len();
                    }
                    self.metrics.incr(names::ADDR_BOOK_HITS);
                    self.tracer.record_with(op, now, || TraceEventKind::AddrBookHit);
                    self.start_fetch(op, node, dial_now);
                } else {
                    if let Some(OpState::Retrieve { phase, walks_outstanding, .. }) =
                        self.ops.get_mut(&op)
                    {
                        *phase = RetrievePhase::PeerWalk;
                        *walks_outstanding = to_walk.len();
                    }
                    self.tracer.record_with(op, now, || TraceEventKind::PhaseEntered {
                        phase: "peer_walk",
                    });
                }
                for provider in to_walk {
                    let key = Key::from_peer(&provider);
                    let (qid, outputs) =
                        self.nodes[node].node.dht.start_query(key, QueryTarget::Peer(provider));
                    self.query_owner.insert((node, qid), op);
                    self.process_dht_outputs(node, outputs);
                }
            }
            Action::Fetch { node, providers } => {
                for provider in &providers {
                    self.nodes[node].node.addr_book.insert(&provider.peer, &provider.addrs);
                }
                self.start_fetch(op, node, providers);
            }
            Action::JoinFetch { node, provider } => {
                self.nodes[node].node.addr_book.insert(&provider.peer, &provider.addrs);
                self.join_fetch(op, node, provider);
            }
            Action::RetrieveFail => self.finish_retrieve(now, op, false),
            Action::CancelProbe { .. } | Action::Nothing => {}
        }
    }

    fn send_provider_store(
        &mut self,
        op: OpId,
        from: NodeId,
        to: Arc<PeerInfo>,
        key: Key,
        provider: Arc<PeerInfo>,
    ) {
        // The connection from the walk may already be gone (conn-manager
        // pruning / churn between response and store): the re-dial then
        // burns a transport timeout — the source of Figure 9c's spikes.
        let stale = self.rng.random_range(0.0..1.0) < self.cfg.stale_dial_prob;
        match (stale, self.dial(from, &to.peer)) {
            (false, Some((target, connect_delay))) => {
                let delay = connect_delay + self.one_way(from, target);
                if self.degraded_loss(from, target) {
                    self.queue.schedule(delay, NetEvent::ProviderStoreSettled { op, ok: false });
                    return;
                }
                self.queue.schedule(
                    delay,
                    NetEvent::ProviderStoreArrive { from, to: target, key, provider },
                );
                // Fire-and-forget: the publisher's batch item settles when
                // the send completes (§3.1).
                self.queue.schedule(delay, NetEvent::ProviderStoreSettled { op, ok: true });
            }
            _ => {
                let (delay, _) = self.sample_fail_delay();
                self.queue.schedule(delay, NetEvent::ProviderStoreSettled { op, ok: false });
            }
        }
    }

    /// Like [`Self::send_provider_store`], but one message carries every
    /// key of a sweep batch. The dial economics (stale-connection draw,
    /// transport timeouts, degraded-link loss) are identical per message —
    /// the sweep's win is needing k messages per *batch* rather than per
    /// CID.
    fn send_provider_batch(
        &mut self,
        op: OpId,
        from: NodeId,
        to: Arc<PeerInfo>,
        keys: Arc<Vec<Key>>,
        provider: Arc<PeerInfo>,
    ) {
        let stale = self.rng.random_range(0.0..1.0) < self.cfg.stale_dial_prob;
        match (stale, self.dial(from, &to.peer)) {
            (false, Some((target, connect_delay))) => {
                let delay = connect_delay + self.one_way(from, target);
                if self.degraded_loss(from, target) {
                    self.queue.schedule(delay, NetEvent::ProviderStoreSettled { op, ok: false });
                    return;
                }
                self.queue.schedule(
                    delay,
                    NetEvent::ProviderBatchArrive { from, to: target, keys, provider },
                );
                self.queue.schedule(delay, NetEvent::ProviderStoreSettled { op, ok: true });
            }
            _ => {
                let (delay, _) = self.sample_fail_delay();
                self.queue.schedule(delay, NetEvent::ProviderStoreSettled { op, ok: false });
            }
        }
    }

    fn send_value_store(
        &mut self,
        op: OpId,
        from: NodeId,
        to: Arc<PeerInfo>,
        key: Key,
        value: Vec<u8>,
    ) {
        let stale = self.rng.random_range(0.0..1.0) < self.cfg.stale_dial_prob;
        match (stale, self.dial(from, &to.peer)) {
            (false, Some((target, connect_delay))) => {
                let delay = connect_delay + self.one_way(from, target);
                if self.degraded_loss(from, target) {
                    self.queue.schedule(delay, NetEvent::ValueStoreSettled { op, ok: false });
                    return;
                }
                self.queue
                    .schedule(delay, NetEvent::ValueStoreArrive { from, to: target, key, value });
                self.queue.schedule(delay, NetEvent::ValueStoreSettled { op, ok: true });
            }
            _ => {
                let (delay, _) = self.sample_fail_delay();
                self.queue.schedule(delay, NetEvent::ValueStoreSettled { op, ok: false });
            }
        }
    }

    // ------------------------------------------------------------------
    // Bitswap plumbing
    // ------------------------------------------------------------------

    /// Exports a session's counters and per-peer latency samples into the
    /// metrics registry through pre-resolved handles. Called exactly once
    /// per session, right before it is cancelled or its op finishes.
    fn drain_session_obs(&mut self, node: NodeId, session: SessionHandle) {
        if let Some(stats) = self.nodes[node].node.bitswap.session_stats(session) {
            self.metrics.add_handle(self.hot.session_wants_sent, stats.wants_sent);
            self.metrics.add_handle(self.hot.session_reroutes, stats.reroutes);
        }
        let samples = self.nodes[node].node.bitswap.take_latency_samples(session);
        for (_peer, nanos) in samples {
            self.metrics.observe_handle(self.hot.peer_latency_ms, nanos as f64 / 1e6);
        }
    }

    /// Session tuning derived from the network config.
    fn session_config(&self) -> SessionConfig {
        SessionConfig { duplicate_factor: self.cfg.duplicate_factor, ..SessionConfig::default() }
    }

    /// Dials every provider of the swarm concurrently. The first
    /// connection to come up creates the fetch session; later ones join it
    /// ([`IpfsNetwork::on_fetch_connected`]). One guard timer covers the
    /// whole fetch; with a single unreachable provider the op fails after
    /// the dial timeout exactly as the old single-provider path did.
    fn start_fetch(&mut self, op: OpId, node: NodeId, providers: Vec<Arc<PeerInfo>>) {
        let now = self.now();
        if let Some(OpState::Retrieve { t_fetch_start, .. }) = self.ops.get_mut(&op) {
            *t_fetch_start = Some(now);
        }
        self.tracer.record_with(op, now, || TraceEventKind::PhaseEntered { phase: "fetch" });
        let mut guard_armed = false;
        let mut fail_delays: Vec<SimDuration> = Vec::new();
        for provider in providers {
            let peer = self.resolve(&provider.peer).unwrap_or(usize::MAX);
            self.tracer.record_with(op, now, || TraceEventKind::DialStarted { peer });
            match self.dial(node, &provider.peer) {
                Some((_, connect_delay)) => {
                    let warm = connect_delay == SimDuration::ZERO;
                    self.tracer.record_with(op, now, || TraceEventKind::DialOk { peer, warm });
                    if let Some(OpState::Retrieve { fetch_candidates, .. }) = self.ops.get_mut(&op)
                    {
                        if !fetch_candidates.contains(&provider.peer) {
                            fetch_candidates.push(provider.peer.clone());
                        }
                    }
                    self.queue.schedule(
                        connect_delay,
                        NetEvent::FetchConnected { op, provider: provider.peer.clone() },
                    );
                    if !guard_armed {
                        self.queue.schedule(self.cfg.fetch_timeout, NetEvent::FetchTimeout { op });
                        self.tracer.record_with(op, now, || TraceEventKind::TimerArmed {
                            timer: "fetch_guard",
                        });
                        guard_armed = true;
                    }
                }
                None => {
                    let (delay, class) = self.sample_fail_delay();
                    self.tracer.record_with(op, now, || TraceEventKind::DialFailed { peer, class });
                    fail_delays.push(delay);
                }
            }
        }
        if !guard_armed {
            // Every provider unreachable: the retrieval fails once the
            // slowest dial timeout has burned.
            let delay = fail_delays.into_iter().max().unwrap_or(self.cfg.fetch_timeout);
            self.queue.schedule(delay, NetEvent::FetchTimeout { op });
        }
    }

    /// Dials one extra provider for an already-running fetch (a secondary
    /// peer-record walk resolved after the swarm started). Dial failures
    /// are simply dropped — the running session carries the transfer.
    fn join_fetch(&mut self, op: OpId, node: NodeId, provider: Arc<PeerInfo>) {
        let now = self.now();
        let peer = self.resolve(&provider.peer).unwrap_or(usize::MAX);
        self.tracer.record_with(op, now, || TraceEventKind::DialStarted { peer });
        match self.dial(node, &provider.peer) {
            Some((_, connect_delay)) => {
                let warm = connect_delay == SimDuration::ZERO;
                self.tracer.record_with(op, now, || TraceEventKind::DialOk { peer, warm });
                if let Some(OpState::Retrieve { fetch_candidates, .. }) = self.ops.get_mut(&op) {
                    if !fetch_candidates.contains(&provider.peer) {
                        fetch_candidates.push(provider.peer.clone());
                    }
                }
                self.queue.schedule(
                    connect_delay,
                    NetEvent::FetchConnected { op, provider: provider.peer.clone() },
                );
            }
            None => {
                let (_, class) = self.sample_fail_delay();
                self.tracer.record_with(op, now, || TraceEventKind::DialFailed { peer, class });
            }
        }
    }

    fn on_fetch_connected(&mut self, op: OpId, provider: PeerId) {
        let Some(OpState::Retrieve {
            node,
            cid,
            fetch_session,
            probe_havers,
            fetch_candidates,
            ..
        }) = self.ops.get(&op)
        else {
            return;
        };
        let (node, cid, existing, havers, candidates) =
            (*node, cid.clone(), *fetch_session, probe_havers.clone(), fetch_candidates.clone());
        let now = self.now();
        if self.tracer.is_enabled() {
            // The dial component of the §6.2 split ends here: the
            // connection to the provider is up (instantly for warm
            // reuse) and the Bitswap exchange begins.
            let peer = self.resolve(&provider).unwrap_or(usize::MAX);
            self.tracer.record_with(op, now, || TraceEventKind::DialCompleted { peer });
        }
        if let Some(session) = existing {
            // A later swarm member came up: join the running session.
            let n = &mut self.nodes[node];
            n.node.bitswap.set_clock(now.as_nanos());
            let outputs = n.node.bitswap.add_session_peer(session, provider, &mut n.node.store);
            let ctx = self.op_ctx(node, op);
            self.process_bitswap_outputs(node, outputs, ctx);
            return;
        }
        // First connection up: create the session. Every swarm member
        // whose dial is still completing joins the candidate set now (the
        // WANT-HAVE round overlaps their connects), and peers that
        // answered the opportunistic probe with HAVE short-circuit in —
        // they already proved they hold (part of) the content.
        let mut peers = vec![provider];
        for candidate in candidates.into_iter().chain(havers) {
            if !peers.contains(&candidate) {
                peers.push(candidate);
            }
        }
        let session_cfg = self.session_config();
        let n = &mut self.nodes[node];
        n.node.bitswap.set_clock(now.as_nanos());
        let (session, outputs) =
            n.node.bitswap.start_session_with(cid, peers, session_cfg, &mut n.node.store);
        if let Some(OpState::Retrieve { fetch_session, .. }) = self.ops.get_mut(&op) {
            *fetch_session = Some(session);
        }
        self.session_owner.insert((node, session), op);
        let ctx = self.op_ctx(node, op);
        self.process_bitswap_outputs(node, outputs, ctx);
    }

    /// The causal context of an op's current activity: trace id from the
    /// op's identity, parent span from its active retrieval phase (the op
    /// root for non-retrieve ops or ops already finalized). Returns
    /// [`TraceCtx::NONE`] when the sink is off, so the disabled path costs
    /// one branch and carries zeroes.
    fn op_ctx(&self, node: NodeId, op: OpId) -> TraceCtx {
        if !self.dtrace.active() {
            return TraceCtx::NONE;
        }
        let tid = dtrace::trace_id(node, op);
        let parent = match self.ops.get(&op) {
            Some(OpState::Retrieve { phase, .. }) => {
                let label = match phase {
                    RetrievePhase::BitswapProbe => "bitswap_probe",
                    RetrievePhase::ProviderWalk => "provider_walk",
                    RetrievePhase::PeerWalk => "peer_walk",
                    RetrievePhase::Fetch => "fetch",
                };
                dtrace::phase_span(tid, label)
            }
            _ => dtrace::root_span(tid),
        };
        TraceCtx { trace_id: tid, parent_span: parent }
    }

    /// Records the causal trail of a mid-fetch peer loss: one
    /// `bs:reroute` fragment per want re-sent to a surviving candidate
    /// and one `bs:want_failed` per want with nowhere left to go. `b`
    /// carries the dead node's id so post-mortems can name the lost peer.
    fn record_reroute_fragments(
        &mut self,
        op: OpId,
        node: NodeId,
        dead: NodeId,
        outputs: &[EngineOutput],
        now: SimTime,
    ) {
        let tid = dtrace::trace_id(node, op);
        let parent = dtrace::root_span(tid);
        for out in outputs {
            match out {
                EngineOutput::Send { to, message: Message::WantBlock(cid) } => {
                    let target = self.resolve(to);
                    self.dtrace.record_span(
                        tid,
                        parent,
                        node,
                        target,
                        "bs",
                        "reroute",
                        cid_low64(cid),
                        dead as u64,
                        now,
                        now,
                    );
                }
                EngineOutput::WantFailed { cid, .. } => {
                    self.dtrace.record_span(
                        tid,
                        parent,
                        node,
                        None,
                        "bs",
                        "want_failed",
                        cid_low64(cid),
                        dead as u64,
                        now,
                        now,
                    );
                }
                _ => {}
            }
        }
    }

    fn process_bitswap_outputs(&mut self, id: NodeId, outputs: Vec<EngineOutput>, ctx: TraceCtx) {
        for output in outputs {
            match output {
                EngineOutput::Send { to, message } => {
                    let Some(target) = self.resolve(&to) else { continue };
                    // The Bitswap engine tracks session peers on its own;
                    // a partition that severed the connection set must
                    // also stop sends the engine still believes possible.
                    if self.cut_in_flight(id, target) || self.degraded_loss(id, target) {
                        continue; // session guard timers handle the fallout
                    }
                    self.metrics.incr_handle(self.hot.bitswap_sent[bitswap_kind(&message)]);
                    let bytes = message.wire_size();
                    let from_region = self.nodes[id].region;
                    let from_bw = self.nodes[id].bandwidth;
                    let to_region = self.nodes[target].region;
                    let to_bw = self.nodes[target].bandwidth;
                    let delay = self.cfg.latency.sample_transfer(
                        &mut self.rng,
                        bytes,
                        from_region,
                        from_bw,
                        to_region,
                        to_bw,
                    );
                    let delay = self.inflate_latency(delay, from_region, to_region);
                    // BLOCK payloads serialize at the sender's uplink:
                    // concurrent transfers queue behind each other (zero
                    // wait for an isolated block, so single-provider
                    // timings are untouched). `sample_transfer` already
                    // prices this block's own serialization; the queue
                    // adds only the wait for earlier committed blocks.
                    let delay = if let Message::Block { data, .. } = &message {
                        let now = self.now();
                        let start = self.nodes[id].uplink_free_at.max(now);
                        let tx = SimDuration::from_secs_f64(
                            (data.len() as f64 * 8.0) / from_bw.up_bps() as f64,
                        );
                        self.nodes[id].uplink_free_at = start + tx;
                        if self.dtrace.active() {
                            // The serve span a remote peer contributes to the
                            // requester's trace: this block's serialization
                            // at the sender's uplink, with the queue wait
                            // behind earlier blocks kept in `b`.
                            self.dtrace.record_span(
                                ctx.trace_id,
                                ctx.parent_span,
                                id,
                                Some(target),
                                "bs",
                                "block_serve",
                                data.len() as u64,
                                start.since(now).as_nanos(),
                                start,
                                start + tx,
                            );
                        }
                        delay + start.since(now)
                    } else {
                        delay
                    };
                    self.queue.schedule(
                        delay,
                        NetEvent::BitswapArrive {
                            from: id,
                            to: target,
                            message: Box::new(message),
                            ctx,
                        },
                    );
                }
                EngineOutput::SessionComplete { session } => {
                    if let Some(op) = self.session_owner.remove(&(id, session)) {
                        self.on_session_complete(op, session);
                    }
                }
                EngineOutput::BlockStored { session, .. } => {
                    self.metrics.incr(names::BITSWAP_BLOCKS_STORED);
                    self.metrics.incr_handle(self.hot.session_blocks_received);
                    if self.tracer.is_enabled() {
                        if let Some(&op) = self.session_owner.get(&(id, session)) {
                            let now = self.now();
                            self.tracer.record_with(op, now, || TraceEventKind::BlockReceived);
                        }
                    }
                }
                EngineOutput::DuplicateBlock { .. } => {
                    // A duplicate-factor race (or re-routed want) delivered
                    // the same block twice: wasted bytes, counted.
                    self.metrics.incr_handle(self.hot.session_dup_blocks);
                }
                EngineOutput::WantFailed { session, .. } => {
                    // Expected during the probe phase (neighbours lack the
                    // content); fatal during a fetch (provider reneged).
                    let owner = self.session_owner.get(&(id, session)).copied();
                    if let Some(op) = owner {
                        let in_fetch = matches!(
                            self.ops.get(&op),
                            Some(OpState::Retrieve { phase: RetrievePhase::Fetch, .. })
                        );
                        if in_fetch {
                            self.session_owner.remove(&(id, session));
                            let now = self.now();
                            self.finish_retrieve(now, op, false);
                        }
                    }
                }
            }
        }
    }

    fn on_session_complete(&mut self, op: OpId, session: SessionHandle) {
        let now = self.now();
        let finish = {
            let Some(OpState::Retrieve {
                phase, probe_session, via_bitswap, t_bitswap_end, ..
            }) = self.ops.get_mut(&op)
            else {
                return;
            };
            match phase {
                RetrievePhase::BitswapProbe if *probe_session == Some(session) => {
                    // A neighbour had the content: resolved via Bitswap.
                    *via_bitswap = true;
                    *t_bitswap_end = Some(now);
                    true
                }
                RetrievePhase::Fetch => true,
                _ => false,
            }
        };
        if finish {
            self.finish_retrieve(now, op, true);
        }
    }

    // ------------------------------------------------------------------
    // Finalization
    // ------------------------------------------------------------------

    fn finish_publish(&mut self, now: SimTime, op: OpId, success: bool) {
        let Some(OpState::Publish {
            node,
            cid,
            t0,
            t_walk_end,
            phase,
            silent,
            walk_rpcs,
            walk_failures,
        }) = self.ops.remove(&op)
        else {
            return;
        };
        if silent {
            return;
        }
        let t_walk = t_walk_end.unwrap_or(now);
        let stored = match phase {
            PublishPhase::RpcBatch { stored, .. } => stored,
            PublishPhase::Walk => 0,
        };
        let ok = success && stored > 0;
        self.metrics.incr(if ok { names::PUBLISH_SUCCESS } else { names::PUBLISH_FAILED });
        self.tracer.record_with(op, now, || TraceEventKind::OpFinished { success: ok });
        self.publish_reports.push(PublishReport {
            op,
            node,
            cid,
            started_at: t0,
            total: now - t0,
            dht_walk: t_walk - t0,
            rpc_batch: now - t_walk,
            records_stored: stored,
            walk_rpcs,
            walk_failures,
            success: ok,
        });
        self.dtrace.finish_op(op);
    }

    fn finish_retrieve(&mut self, now: SimTime, op: OpId, success: bool) {
        let Some(OpState::Retrieve {
            node,
            cid,
            t0,
            t_bitswap_end,
            t_provider_end,
            t_peer_end,
            t_fetch_start,
            probe_session,
            fetch_session,
            via_bitswap,
            addrbook_hit,
            ..
        }) = self.ops.remove(&op)
        else {
            return;
        };
        for s in [probe_session, fetch_session].into_iter().flatten() {
            self.session_owner.remove(&(node, s));
            self.drain_session_obs(node, s);
            if !success {
                // Abort the transfer: CANCEL everything still in flight
                // and drop the session, so a later disconnect can't
                // resurrect a dead op's wants.
                let outputs = self.nodes[node].node.bitswap.cancel_session(s);
                let ctx = self.op_ctx(node, op);
                self.process_bitswap_outputs(node, outputs, ctx);
            }
        }
        let t_bs = t_bitswap_end.unwrap_or(now);
        let t_prov = t_provider_end.unwrap_or(t_bs);
        let t_peer = t_peer_end.unwrap_or(t_prov);
        let t_fetch0 = t_fetch_start.unwrap_or(t_peer);
        let bytes = if success { self.nodes[node].node.store.stats().bytes } else { 0 };
        self.metrics.incr(if success { names::RETRIEVE_SUCCESS } else { names::RETRIEVE_FAILED });
        if success && via_bitswap {
            self.metrics.incr(names::RETRIEVE_VIA_BITSWAP);
        }
        self.tracer.record_with(op, now, || TraceEventKind::OpFinished { success });
        self.retrieve_reports.push(RetrieveReport {
            op,
            node,
            cid: cid.clone(),
            started_at: t0,
            total: now - t0,
            bitswap_probe: t_bs - t0,
            provider_walk: t_prov - t_bs,
            peer_walk: t_peer - t_prov,
            fetch: now - t_fetch0,
            bytes,
            success,
            via_bitswap,
            addrbook_hit,
        });
        // Flight recorder: a failed, flagged (mid-fetch re-route), or
        // deadline-breaching op dumps its full causal trail — every ring
        // fragment its trace id touched on any node.
        if self.dtrace.config().postmortem {
            let breached =
                self.dtrace.config().deadline.map(|d| now.since(t0) > d).unwrap_or(false);
            if !success || breached || self.dtrace.is_flagged(op) {
                let tid = dtrace::trace_id(node, op);
                let entries = self.dtrace.ring_entries_for(tid);
                let outcome = if !success {
                    "failed"
                } else if breached {
                    "deadline_breached"
                } else {
                    "rerouted"
                };
                let text =
                    dtrace::render_postmortem(op, node, "retrieve", outcome, t0, now, &entries);
                self.postmortems.push((op, text));
            }
        }
        self.dtrace.finish_op(op);
        // §3.1: "any peer that later retrieves the data becomes a
        // temporary ... content provider themselves by publishing a
        // provider record".
        if success && self.cfg.retriever_becomes_provider {
            self.publish_inner(node, cid, true);
        }
    }

    // ------------------------------------------------------------------
    // Physics
    // ------------------------------------------------------------------

    /// Attempts to dial `peer` from `from`: returns the target node id and
    /// the connection-establishment delay (zero over a warm connection,
    /// four latency legs for a fresh dial — TCP+TLS-style), or `None` if
    /// the peer is not dialable.
    fn dial(&mut self, from: NodeId, peer: &PeerId) -> Option<(NodeId, SimDuration)> {
        let target = self.resolve(peer)?;
        self.metrics.incr_handle(self.hot.dials_attempted);
        if !self.nodes[target].online {
            return None;
        }
        if self.faults.has_active_faults() {
            if self.faults.blocked(self.nodes[from].region, self.nodes[target].region) {
                // A warm connection across the cut is dead even if the
                // connection manager hasn't noticed: invalidate it so the
                // Bitswap probe can't reuse it either.
                if self.nodes[from].connections.remove(target) {
                    self.nodes[target].connections.remove(from);
                    self.metrics.incr(names::FAULT_CONNS_SEVERED);
                }
                self.metrics.incr(names::FAULT_DIALS_BLOCKED);
                return None;
            }
            let spike = self.faults.extra_dial_fail_prob();
            if spike > 0.0 && self.rng.random_range(0.0..1.0) < spike {
                self.metrics.incr(names::FAULT_DIALS_SPIKED);
                return None;
            }
        }
        if let Some(last_used) = self.nodes[from].connections.last_used(target) {
            let now = self.now();
            if now.since(last_used) > self.cfg.conn_idle_timeout {
                // The connection manager closed this idle connection long
                // ago; fall through to a fresh dial.
                self.nodes[from].connections.remove(target);
                self.nodes[target].connections.remove(from);
                self.metrics.incr_handle(self.hot.conn_idle_expired);
            } else {
                self.nodes[from].connections.insert(target, now);
                self.metrics.incr_handle(self.hot.dials_warm);
                return Some((target, SimDuration::ZERO));
            }
        }
        let extra_legs = if self.nodes[target].is_server {
            4 // SYN, SYN-ACK, TLS x2
        } else if self.cfg.enable_dcutr {
            // Hole punch through a relay (§3.1's DCUtR): relay signalling
            // plus the simultaneous-open attempt — roughly twice the legs
            // of a direct dial, and it only works sometimes.
            if self.rng.random_range(0.0..1.0) >= self.cfg.dcutr_success_rate {
                return None;
            }
            8
        } else {
            // NAT'ed peer without hole punching: not dialable (§3.1:
            // "peers behind NATs cannot host content themselves").
            return None;
        };
        let d = self.one_way(from, target) * extra_legs;
        let now = self.now();
        self.nodes[from].connections.insert(target, now);
        self.nodes[target].connections.insert(from, now);
        self.prune_connections(from);
        self.prune_connections(target);
        self.metrics.incr_handle(self.hot.dials_ok);
        Some((target, d))
    }

    fn one_way(&mut self, a: NodeId, b: NodeId) -> SimDuration {
        let ra = self.nodes[a].region;
        let rb = self.nodes[b].region;
        let base = self.cfg.latency.sample_one_way(&mut self.rng, ra, rb);
        self.inflate_latency(base, ra, rb)
    }

    /// Applies any active degradation's latency multiplier to a sampled
    /// delay. No-op (and float-exact) when no window covers the path.
    fn inflate_latency(&self, base: SimDuration, ra: Region, rb: Region) -> SimDuration {
        if !self.faults.has_active_faults() {
            return base;
        }
        let factor = self.faults.latency_factor(ra, rb);
        if factor > 1.0 {
            SimDuration::from_secs_f64(base.as_secs_f64() * factor)
        } else {
            base
        }
    }

    /// Samples the delay of a failed dial per the §6.1 timeout mix. A
    /// small positive overhead rides on top of each timer (address
    /// resolution, scheduler latency), so failures land just *past* the
    /// 5 s / 45 s marks like the spikes in Figure 9c. Returns the delay
    /// and its transport class, and meters the failure.
    fn sample_fail_delay(&mut self) -> (SimDuration, DialClass) {
        let x: f64 = self.rng.random_range(0.0..1.0);
        let overhead = SimDuration::from_millis(self.rng.random_range(20..300));
        let t = &self.cfg.timeouts;
        let (delay, class) = if x < t.fast_refuse_share {
            (t.fast_refuse_delay + overhead, DialClass::FastRefuse)
        } else if x < t.fast_refuse_share + t.websocket_share {
            (t.websocket_timeout + overhead, DialClass::Websocket45s)
        } else {
            (t.dial_timeout + overhead, DialClass::Timeout5s)
        };
        self.metrics.incr_handle(self.hot.dials_failed);
        self.metrics.incr_handle(self.hot.dial_fail[dial_class_kind(class)]);
        (delay, class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::PopulationConfig;

    #[test]
    fn offline_nodes_leave_no_pending_timers() {
        // A node whose session ends must not keep a refresh chain ticking
        // in the scheduler. With no always-online vantage or hydra nodes,
        // only the currently-online population may hold pending timers
        // once every scheduled session has played out.
        let pop = Population::generate(
            PopulationConfig {
                size: 60,
                nat_fraction: 0.3,
                horizon: SimDuration::from_hours(2),
                ..Default::default()
            },
            21,
        );
        let cfg = NetworkConfig {
            table_refresh_interval: Some(SimDuration::from_mins(10)),
            ..NetworkConfig::default()
        };
        let mut net = IpfsNetwork::from_population(&pop, &[], cfg, 21);
        let deadline = SimTime::ZERO + SimDuration::from_hours(3);
        net.run_until(deadline);
        let online = net.nodes.iter().filter(|n| n.online).count();
        assert!(online < net.nodes.len(), "test needs at least one offline node");
        for (id, node) in net.nodes.iter().enumerate() {
            if !node.online {
                assert!(node.refresh_timer.is_none(), "offline node {id} holds a refresh timer");
            }
        }
        // Everything still pending must be either one refresh timer per
        // online node or a churn transition scheduled past the deadline —
        // permanently-offline nodes contribute nothing.
        let future_churn: usize = pop
            .peers
            .iter()
            .flat_map(|p| p.schedule.sessions.iter())
            .map(|&(start, end)| usize::from(start > deadline) + usize::from(end > deadline))
            .sum();
        assert!(
            net.queue.len() <= online + future_churn,
            "{} pending events for {online} online nodes + {future_churn} future churns: \
             offline refresh chains leak",
            net.queue.len()
        );
    }

    fn lifecycle_net(sweep: bool) -> IpfsNetwork {
        let pop = Population::generate(
            PopulationConfig {
                size: 150,
                nat_fraction: 0.3,
                horizon: SimDuration::from_hours(12),
                ..Default::default()
            },
            23,
        );
        let cfg = NetworkConfig {
            auto_republish: true,
            reprovide_sweep: sweep,
            node: NodeConfig {
                republish_interval: SimDuration::from_hours(1),
                ..NodeConfig::default()
            },
            ..NetworkConfig::default()
        };
        IpfsNetwork::from_population(&pop, &[VantagePoint::EuCentral1], cfg, 23)
    }

    #[test]
    fn republish_chain_survives_provider_downtime() {
        // go-ipfs reprovides on startup: a provider that is offline when
        // its republish tick would fire must reannounce after it
        // restarts, not drop the chain forever. Per-CID chain mode.
        let mut net = lifecycle_net(false);
        let [provider] = net.vantage_ids(1)[..] else { panic!() };
        let data = Bytes::from(vec![0x5A; 100_000]);
        let cid = net.import_content(provider, &data);
        net.publish(provider, cid.clone());
        net.run_until_quiet();
        assert!(net.publish_reports[0].success);
        let entry = net.nodes[provider].provided.get(&Key::from_cid(&cid)).unwrap();
        assert!(entry.timer.is_some(), "republish chain armed");

        // Take the provider down before the boundary and run across it:
        // the parked chain must stay silent while the node is dead.
        net.on_churn(provider, false);
        let entry = net.nodes[provider].provided.get(&Key::from_cid(&cid)).unwrap();
        assert!(entry.timer.is_none() && entry.deferred, "chain parked");
        net.run_until(SimTime::ZERO + SimDuration::from_hours(2));
        assert_eq!(net.metrics.get(names::PROVIDER_REPUBLISHES), 0);

        // Restart: the chain reannounces immediately and re-arms.
        net.on_churn(provider, true);
        let resume_by = net.now() + SimDuration::from_mins(30);
        net.run_until(resume_by);
        assert_eq!(net.metrics.get(names::PROVIDER_REPUBLISH_RESUMED), 1);
        assert!(
            net.metrics.get(names::PROVIDER_REPUBLISHES) >= 1,
            "provider must reannounce after restart"
        );
        let entry = net.nodes[provider].provided.get(&Key::from_cid(&cid)).unwrap();
        assert!(entry.timer.is_some(), "chain re-armed after resume");
    }

    #[test]
    fn reprovide_sweep_survives_provider_downtime() {
        // Same offline-defer/resume contract, sweep mode: the single
        // sweep timer parks at churn-off and the rejoin runs the sweep
        // immediately (reprovide-on-startup), then re-arms it.
        let mut net = lifecycle_net(true);
        let [provider] = net.vantage_ids(1)[..] else { panic!() };
        let data = Bytes::from(vec![0x5A; 100_000]);
        let cid = net.import_content(provider, &data);
        net.publish(provider, cid.clone());
        net.run_until_quiet();
        assert!(net.publish_reports[0].success);
        assert!(net.nodes[provider].provided.contains_key(&Key::from_cid(&cid)));
        assert!(net.nodes[provider].sweep_timer.is_some(), "sweep timer armed");

        net.on_churn(provider, false);
        assert!(net.nodes[provider].sweep_timer.is_none(), "sweep timer cancelled");
        assert!(net.nodes[provider].sweep_deferred, "sweep parked");
        net.run_until(SimTime::ZERO + SimDuration::from_hours(2));
        assert_eq!(net.metrics.get(names::PROVIDER_REPUBLISHES), 0);
        assert_eq!(net.metrics.get(names::PROVIDER_SWEEP_RUNS), 0);

        net.on_churn(provider, true);
        let resume_by = net.now() + SimDuration::from_mins(30);
        net.run_until(resume_by);
        assert_eq!(net.metrics.get(names::PROVIDER_REPUBLISH_RESUMED), 1);
        assert!(net.metrics.get(names::PROVIDER_SWEEP_RUNS) >= 1, "sweep ran after restart");
        assert!(
            net.metrics.get(names::PROVIDER_REPUBLISHES) >= 1,
            "provider must reannounce after restart"
        );
        assert!(net.nodes[provider].sweep_timer.is_some(), "sweep re-armed after resume");
        // The reannounced record actually landed somewhere: batched
        // stores delivered.
        assert!(net.metrics.get(names::DHT_RPC_RECV_ADD_PROVIDER_BATCH) >= 1);
    }

    #[test]
    fn provided_set_scales_to_ten_thousand_cids() {
        // Regression guard for the O(n) `republish.iter().position(...)`
        // scans the Vec-based provided set paid on every re-arm and every
        // Republish dispatch: arming (and re-arming) 10k CIDs per node
        // must be keyed, not scanned. With the old quadratic path this
        // loop was ~10^8 tuple compares; keyed it is ~10^5 map ops.
        let mut per_cid = lifecycle_net(false);
        let mut sweep = lifecycle_net(true);
        let [p1] = per_cid.vantage_ids(1)[..] else { panic!() };
        let [p2] = sweep.vantage_ids(1)[..] else { panic!() };
        let cids: Vec<Cid> = (0u32..10_000).map(|i| Cid::from_raw_data(&i.to_le_bytes())).collect();
        let t0 = std::time::Instant::now();
        for cid in &cids {
            per_cid.arm_reprovide(p1, cid.clone());
            sweep.arm_reprovide(p2, cid.clone());
        }
        // Re-arm every CID once more: replaces the pending chain entry
        // instead of stacking a second one.
        for cid in &cids {
            per_cid.arm_reprovide(p1, cid.clone());
            sweep.arm_reprovide(p2, cid.clone());
        }
        assert_eq!(per_cid.nodes[p1].provided.len(), 10_000);
        assert_eq!(sweep.nodes[p2].provided.len(), 10_000);
        assert!(per_cid.nodes[p1].provided.values().all(|e| e.timer.is_some()));
        // Sweep mode: one timer maintains all 10k CIDs.
        assert!(sweep.nodes[p2].provided.values().all(|e| e.timer.is_none()));
        assert!(sweep.nodes[p2].sweep_timer.is_some());
        // Generous even for debug builds + CI noise; the quadratic path
        // took minutes here.
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "provided-set maintenance is no longer keyed: {:?}",
            t0.elapsed()
        );
    }

    /// Is a provider record for `key` held (unexpired) by any online node?
    fn record_available(net: &IpfsNetwork, key: &Key) -> bool {
        let now = net.now();
        net.nodes.iter().any(|n| n.online && !n.node.dht.store().providers(key, now).is_empty())
    }

    mod availability_timeline {
        use super::*;
        use proptest::prelude::*;

        /// One lifecycle run: publish `n_cids` from an always-online
        /// vantage provider, maintain them for 26 h (past the 24 h record
        /// expiry, so survival requires republication to actually work),
        /// with a provider outage spanning at least one republish
        /// boundary. Returns the availability observed at each checkpoint.
        fn run_timeline(
            sweep: bool,
            seed: u64,
            interval: SimDuration,
            off_at: SimTime,
            downtime: SimDuration,
            n_cids: usize,
        ) -> Vec<bool> {
            let pop = Population::generate(
                PopulationConfig {
                    size: 60,
                    nat_fraction: 0.3,
                    horizon: SimDuration::from_hours(30),
                    ..Default::default()
                },
                seed,
            );
            let cfg = NetworkConfig {
                auto_republish: true,
                reprovide_sweep: sweep,
                node: NodeConfig { republish_interval: interval, ..NodeConfig::default() },
                ..NetworkConfig::default()
            };
            let mut net =
                IpfsNetwork::from_population(&pop, &[VantagePoint::EuCentral1], cfg, seed);
            let [provider] = net.vantage_ids(1)[..] else { panic!() };
            let mut keys = Vec::new();
            for i in 0..n_cids {
                let data = Bytes::from(vec![seed as u8 ^ i as u8; 4096 + i]);
                let cid = net.import_content(provider, &data);
                keys.push(Key::from_cid(&cid));
                net.publish(provider, cid);
            }
            net.run_until_quiet();
            let on_at = off_at + downtime;
            let mut went_off = false;
            let mut came_back = false;
            let mut timeline = Vec::new();
            // 47 min stride: coprime with the republish interval, so
            // checkpoints land on both sides of every boundary.
            let stride = SimDuration::from_mins(47);
            let end = SimTime::ZERO + SimDuration::from_hours(26);
            let mut t = net.now() + stride;
            while t <= end {
                if !went_off && t >= off_at {
                    net.run_until(off_at);
                    net.on_churn(provider, false);
                    went_off = true;
                }
                if went_off && !came_back && t >= on_at {
                    net.run_until(on_at);
                    net.on_churn(provider, true);
                    came_back = true;
                }
                net.run_until(t);
                // Settling guard: skip the checkpoint immediately after
                // rejoin — the resumed reannounce needs its walk + stores
                // to land before records refresh.
                let settling = came_back && t < on_at + SimDuration::from_mins(45);
                if !settling {
                    timeline.push(keys.iter().all(|k| record_available(&net, k)));
                }
                t += stride;
            }
            timeline
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            /// The batched sweep maintains the same record-availability
            /// timeline as per-CID chains: no record expires while its
            /// provider is online, the records survive a provider outage
            /// shorter than the 24 h expiry even when it spans a
            /// republish boundary, and the deferred sweep resumes on
            /// rejoin. Availability must hold at every checkpoint of a
            /// 26 h run (past record expiry, so survival proves the
            /// maintenance loop refreshed them) — in both modes, giving
            /// identical timelines.
            #[test]
            fn sweep_matches_per_cid_availability(
                seed in 1u64..1000,
                interval_mins in 60u64..=120,
                downtime_extra_mins in 5u64..=40,
            ) {
                let interval = SimDuration::from_mins(interval_mins);
                // Outage begins mid-cycle and lasts one interval plus a
                // bit: it always crosses at least one republish boundary.
                let off_at = SimTime::ZERO + SimDuration::from_hours(18);
                let downtime =
                    interval + SimDuration::from_mins(downtime_extra_mins);
                let per_cid =
                    run_timeline(false, seed, interval, off_at, downtime, 3);
                let swept =
                    run_timeline(true, seed, interval, off_at, downtime, 3);
                prop_assert!(
                    per_cid.iter().all(|&a| a),
                    "per-CID chains dropped availability: {per_cid:?}"
                );
                prop_assert!(
                    swept.iter().all(|&a| a),
                    "sweep dropped availability: {swept:?}"
                );
                prop_assert_eq!(per_cid, swept);
            }
        }
    }

    fn small_net(n: usize, seed: u64) -> IpfsNetwork {
        let pop = Population::generate(
            PopulationConfig {
                size: n,
                nat_fraction: 0.3,
                horizon: SimDuration::from_hours(6),
                ..Default::default()
            },
            seed,
        );
        IpfsNetwork::from_population(
            &pop,
            &[VantagePoint::EuCentral1, VantagePoint::UsWest1],
            NetworkConfig::default(),
            seed,
        )
    }

    #[test]
    fn publish_then_retrieve_roundtrip() {
        let mut net = small_net(400, 7);
        let [provider, requester] = net.vantage_ids(2)[..] else { panic!() };
        let data = Bytes::from(vec![0xAB; 512 * 1024]);
        let cid = net.import_content(provider, &data);
        net.publish(provider, cid.clone());
        net.run_until_quiet();
        assert_eq!(net.publish_reports.len(), 1);
        let pr = &net.publish_reports[0];
        assert!(pr.success, "publish must succeed: {pr:?}");
        assert!(pr.records_stored > 0);
        assert!(pr.dht_walk > SimDuration::ZERO);

        net.retrieve(requester, cid.clone());
        net.run_until_quiet();
        assert_eq!(net.retrieve_reports.len(), 1);
        let rr = net.retrieve_reports[0].clone();
        assert!(rr.success, "retrieve must succeed: {rr:?}");
        assert!(!rr.via_bitswap, "no warm connections -> DHT path");
        // The 1 s Bitswap timeout is always paid in this setup (§4.3 note 4).
        assert_eq!(rr.bitswap_probe, SimDuration::from_secs(1));
        assert!(rr.provider_walk > SimDuration::ZERO);
        assert!(rr.total >= SimDuration::from_secs(1));
        // Content verifies end-to-end.
        assert_eq!(net.node_mut(requester).read_content(&cid).unwrap(), data);
    }

    #[test]
    fn bitswap_satisfies_connected_neighbours() {
        let mut net = small_net(300, 8);
        let [provider, requester] = net.vantage_ids(2)[..] else { panic!() };
        let data = Bytes::from(vec![0xCD; 100_000]);
        let cid = net.import_content(provider, &data);
        // Warm connection: the opportunistic Bitswap probe should hit.
        net.connect(provider, requester);
        net.retrieve(requester, cid.clone());
        net.run_until_quiet();
        let rr = net.retrieve_reports[0].clone();
        assert!(rr.success);
        assert!(rr.via_bitswap, "neighbour had the content: {rr:?}");
        assert!(rr.total < SimDuration::from_secs(1), "no DHT, no 1 s timeout: {}", rr.total);
        assert_eq!(rr.provider_walk, SimDuration::ZERO);
    }

    #[test]
    fn retrieval_fails_for_unpublished_content() {
        let mut net = small_net(200, 9);
        let [_, requester] = net.vantage_ids(2)[..] else { panic!() };
        let cid = Cid::from_raw_data(b"never published");
        net.retrieve(requester, cid);
        net.run_until_quiet();
        let rr = net.retrieve_reports[0].clone();
        assert!(!rr.success);
        assert!(rr.bitswap_probe >= SimDuration::from_secs(1));
    }

    #[test]
    fn determinism_same_seed_same_reports() {
        let run = |seed: u64| {
            let mut net = small_net(200, seed);
            let [provider, requester] = net.vantage_ids(2)[..] else { panic!() };
            let data = Bytes::from(vec![1u8; 200_000]);
            let cid = net.import_content(provider, &data);
            net.publish(provider, cid.clone());
            net.run_until_quiet();
            net.retrieve(requester, cid);
            net.run_until_quiet();
            (net.publish_reports[0].total, net.retrieve_reports[0].total, net.events_processed)
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn eu_retrieval_faster_than_africa_on_average() {
        // Table 4's regional ordering must emerge from the latency model.
        let pop = Population::generate(
            PopulationConfig {
                size: 600,
                nat_fraction: 0.3,
                horizon: SimDuration::from_hours(12),
                ..Default::default()
            },
            11,
        );
        let mut net = IpfsNetwork::from_population(
            &pop,
            &[VantagePoint::EuCentral1, VantagePoint::AfSouth1, VantagePoint::UsWest1],
            NetworkConfig::default(),
            11,
        );
        let [eu, af, us] = net.vantage_ids(3)[..] else { panic!() };
        let mut eu_total = 0.0;
        let mut af_total = 0.0;
        for i in 0..8 {
            let data = Bytes::from(vec![i as u8 + 1; 512 * 1024]);
            let cid = net.import_content(us, &data);
            net.publish(us, cid.clone());
            net.run_until_quiet();
            for requester in [eu, af] {
                net.retrieve(requester, cid.clone());
                net.run_until_quiet();
                let rr = net.retrieve_reports.last().unwrap().clone();
                assert!(rr.success, "iteration {i} from {requester}: {rr:?}");
                if requester == eu {
                    eu_total += rr.total.as_secs_f64();
                } else {
                    af_total += rr.total.as_secs_f64();
                }
                net.disconnect_all(requester);
                let us_peer = net.peer_id(us).clone();
                net.forget_address(requester, &us_peer);
            }
        }
        assert!(
            eu_total < af_total,
            "EU ({eu_total:.2}s) should beat Africa ({af_total:.2}s) in aggregate"
        );
    }

    #[test]
    fn partition_blocks_cross_partition_retrieval_until_heal() {
        let mut net = small_net(400, 7);
        let [provider, requester] = net.vantage_ids(2)[..] else { panic!() };
        assert_eq!(net.region(requester), Region::NorthAmericaWest);
        let data = Bytes::from(vec![0x5A; 256 * 1024]);
        let cid = net.import_content(provider, &data);
        net.publish(provider, cid.clone());
        net.run_until_quiet();
        assert!(net.publish_reports[0].success);

        // Cut North America West off from t+10s to t+300s.
        let t0 = net.now();
        let mut plan = FaultPlan::new();
        plan.region_outage(
            t0 + SimDuration::from_secs(10),
            SimDuration::from_secs(290),
            Region::NorthAmericaWest,
        );
        net.install_fault_plan(plan);
        net.run_for(SimDuration::from_secs(20)); // partition is now up

        net.retrieve(requester, cid.clone());
        net.run_until_quiet();
        let rr = net.retrieve_reports[0].clone();
        assert!(!rr.success, "cross-partition retrieval must fail: {rr:?}");
        assert!(net.metrics().get(names::FAULT_DIALS_BLOCKED) > 0);

        // Heal, then the same retrieval succeeds.
        net.run_until(t0 + SimDuration::from_secs(301));
        assert!(!net.fault_oracle().has_active_faults(), "partition healed");
        net.retrieve(requester, cid.clone());
        net.run_until_quiet();
        let rr = net.retrieve_reports[1].clone();
        assert!(rr.success, "post-heal retrieval must succeed: {rr:?}");
        assert_eq!(net.metrics().get(names::FAULT_PARTITION_HEALS), 1);
    }

    #[test]
    fn partition_severs_warm_connections_before_the_probe() {
        // Regression: a warm connection crossing a fresh partition must not
        // feed the 1 s Bitswap probe (the transport would have reset it).
        let mut net = small_net(300, 8);
        let [provider, requester] = net.vantage_ids(2)[..] else { panic!() };
        let data = Bytes::from(vec![0xCD; 100_000]);
        let cid = net.import_content(provider, &data);
        net.connect(provider, requester);
        assert!(net.is_connected(requester, provider));

        let t0 = net.now();
        let mut plan = FaultPlan::new();
        plan.region_outage(
            t0 + SimDuration::from_secs(5),
            SimDuration::from_secs(600),
            net.region(requester),
        );
        net.install_fault_plan(plan);
        net.run_for(SimDuration::from_secs(10));
        assert!(!net.is_connected(requester, provider), "boundary severs the warm conn");
        assert!(net.metrics().get(names::FAULT_CONNS_SEVERED) > 0);

        net.retrieve(requester, cid);
        net.run_until_quiet();
        let rr = net.retrieve_reports[0].clone();
        assert!(!rr.via_bitswap, "probe must not cross the partition: {rr:?}");
        assert!(!rr.success, "provider unreachable during partition: {rr:?}");
    }

    #[test]
    fn crash_wave_takes_peers_down_and_restarts_them() {
        let mut net = small_net(300, 21);
        let t0 = net.now();
        let mut plan = FaultPlan::new();
        plan.crash_wave(t0 + SimDuration::from_secs(30), 0.5, SimDuration::from_secs(120));
        net.install_fault_plan(plan);

        let online_before: usize = (0..net.crashable).filter(|&i| net.is_online(i)).count();
        net.run_until(t0 + SimDuration::from_secs(31));
        let crashed = net.metrics().get(names::FAULT_NODES_CRASHED);
        assert!(crashed > 0, "half the online peers crash");
        let online_during: usize = (0..net.crashable).filter(|&i| net.is_online(i)).count();
        assert!(online_during < online_before);
        // After the restart delay the victims churn back online.
        net.run_until(t0 + SimDuration::from_secs(200));
        let online_after: usize = (0..net.crashable).filter(|&i| net.is_online(i)).count();
        assert!(online_after > online_during, "victims restart after the wave");
        assert_eq!(net.metrics().get(names::FAULT_CRASH_WAVES), 1);
    }

    #[test]
    fn fault_runs_are_deterministic_and_faultless_plans_change_nothing() {
        let run = |plan: Option<FaultPlan>| {
            let mut net = small_net(250, 42);
            let [provider, requester] = net.vantage_ids(2)[..] else { panic!() };
            if let Some(p) = plan {
                net.install_fault_plan(p);
            }
            let data = Bytes::from(vec![1u8; 200_000]);
            let cid = net.import_content(provider, &data);
            net.publish(provider, cid.clone());
            net.run_until_quiet();
            net.retrieve(requester, cid);
            net.run_until_quiet();
            net.run_for(SimDuration::from_secs(400));
            (
                net.publish_reports[0].total,
                net.retrieve_reports[0].total,
                net.events_processed,
                net.metrics().to_json(),
            )
        };
        let scripted = || {
            let mut p = FaultPlan::new();
            p.region_outage(
                SimTime::ZERO + SimDuration::from_secs(120),
                SimDuration::from_secs(60),
                Region::EastAsia,
            );
            p.crash_wave(
                SimTime::ZERO + SimDuration::from_secs(200),
                0.2,
                SimDuration::from_secs(90),
            );
            p
        };
        // Same seed + same plan ⇒ byte-identical metrics and reports.
        assert_eq!(run(Some(scripted())), run(Some(scripted())));
        // An installed-but-empty plan leaves the run byte-identical to a
        // plan-free run: the oracle adds no RNG draws while idle.
        assert_eq!(run(None), run(Some(FaultPlan::new())));
    }

    #[test]
    fn degraded_links_slow_but_do_not_stop_retrieval() {
        let mut net = small_net(300, 17);
        let [provider, requester] = net.vantage_ids(2)[..] else { panic!() };
        let data = Bytes::from(vec![9u8; 256 * 1024]);
        let cid = net.import_content(provider, &data);
        net.publish(provider, cid.clone());
        net.run_until_quiet();

        let mut plan = FaultPlan::new();
        plan.degrade(net.now(), SimDuration::from_hours(2), faultsim::LinkScope::All, 4.0, 0.05);
        net.install_fault_plan(plan);
        net.run_for(SimDuration::from_secs(1));
        net.retrieve(requester, cid);
        net.run_until_quiet();
        let rr = net.retrieve_reports[0].clone();
        assert!(rr.success, "degradation slows but does not cut: {rr:?}");
        assert_eq!(net.metrics().get(names::FAULT_DEGRADE_STARTS), 1);
    }

    #[test]
    fn churn_does_not_break_retrieval() {
        // Run several hours into the horizon so churn events have fired,
        // then publish/retrieve must still succeed.
        let mut net = small_net(500, 13);
        let [provider, requester] = net.vantage_ids(2)[..] else { panic!() };
        net.run_for(SimDuration::from_hours(3));
        let data = Bytes::from(vec![3u8; 512 * 1024]);
        let cid = net.import_content(provider, &data);
        net.publish(provider, cid.clone());
        net.run_until_quiet();
        assert!(net.publish_reports[0].success);
        net.retrieve(requester, cid);
        net.run_until_quiet();
        assert!(net.retrieve_reports[0].success, "{:?}", net.retrieve_reports[0]);
    }

    #[test]
    fn ipns_publish_and_resolve_over_the_dht() {
        use crate::ipns::{IpnsRecord, IPNS_VALIDITY};
        let mut net = small_net(400, 31);
        let [publisher, resolver] = net.vantage_ids(2)[..] else { panic!() };
        let keypair = net.node(publisher).keypair().clone();
        let cid = Cid::from_raw_data(b"site v1");
        let record = IpnsRecord::sign(&keypair, cid.clone(), 1, net.now(), IPNS_VALIDITY);
        net.publish_ipns(publisher, &record);
        net.run_until_quiet();
        let pr = net.ipns_publish_reports.last().unwrap();
        assert!(pr.success, "{pr:?}");
        assert!(pr.records_stored >= 10);

        net.resolve_ipns(resolver, &keypair.peer_id());
        net.run_until_quiet();
        let rr = net.ipns_resolve_reports.last().unwrap();
        assert!(rr.success, "{rr:?}");
        assert_eq!(rr.record.as_ref().unwrap().value, cid);
        // The resolver's local IPNS cache now has it.
        let name = keypair.peer_id();
        let now = net.now();
        assert!(net.node_mut(resolver).ipns.resolve(&name, now).is_some());
    }

    #[test]
    fn ipns_update_supersedes_older_record() {
        use crate::ipns::{IpnsRecord, IPNS_VALIDITY};
        let mut net = small_net(400, 32);
        let [publisher, resolver] = net.vantage_ids(2)[..] else { panic!() };
        let keypair = net.node(publisher).keypair().clone();
        let v1 = IpnsRecord::sign(&keypair, Cid::from_raw_data(b"v1"), 1, net.now(), IPNS_VALIDITY);
        net.publish_ipns(publisher, &v1);
        net.run_until_quiet();
        let v2 = IpnsRecord::sign(&keypair, Cid::from_raw_data(b"v2"), 2, net.now(), IPNS_VALIDITY);
        net.publish_ipns(publisher, &v2);
        net.run_until_quiet();

        net.resolve_ipns(resolver, &keypair.peer_id());
        net.run_until_quiet();
        let rr = net.ipns_resolve_reports.last().unwrap();
        assert!(rr.success);
        // Storing nodes arbitrated by sequence: v2 wins. (The walk stops at
        // the first record-holder, which must hold v2 because v1-holders
        // were replaced and the k-closest sets overlap.)
        assert_eq!(rr.record.as_ref().unwrap().value, Cid::from_raw_data(b"v2"));
        assert_eq!(rr.record.as_ref().unwrap().sequence, 2);
    }

    #[test]
    fn resolving_unknown_name_fails_cleanly() {
        let mut net = small_net(200, 33);
        let [_, resolver] = net.vantage_ids(2)[..] else { panic!() };
        let ghost = Keypair::from_seed(0xDEAD).peer_id();
        net.resolve_ipns(resolver, &ghost);
        net.run_until_quiet();
        let rr = net.ipns_resolve_reports.last().unwrap();
        assert!(!rr.success);
        assert!(rr.record.is_none());
    }

    #[test]
    fn dcutr_lets_nat_peers_host_content() {
        // §3.1: "peers behind NATs cannot host content themselves ...
        // a NAT hole-punching solution is currently being developed".
        // With DCUtR enabled (and fresh provider-record addresses, which
        // carry the relay addrs), a NAT'ed peer can serve.
        let build = |dcutr: bool| {
            let pop = Population::generate(
                PopulationConfig {
                    size: 300,
                    nat_fraction: 0.5,
                    horizon: SimDuration::from_hours(8),
                    ..Default::default()
                },
                41,
            );
            let cfg = NetworkConfig {
                enable_dcutr: dcutr,
                dcutr_success_rate: 1.0, // deterministic for the test
                provider_records_carry_addrs: true,
                ..Default::default()
            };
            let net = IpfsNetwork::from_population(&pop, &[VantagePoint::EuCentral1], cfg, 41);
            (net, pop)
        };
        for dcutr in [false, true] {
            let (mut net, pop) = build(dcutr);
            // A NAT'ed peer with a long session starting at t=0.
            let nat_provider = pop
                .peers
                .iter()
                .position(|p| {
                    p.nat
                        && p.schedule.online_at(SimTime::ZERO)
                        && p.schedule.online_at(SimTime::ZERO + SimDuration::from_hours(2))
                })
                .expect("a long-lived NAT'ed peer exists");
            let requester = net.vantage_ids(1)[0];
            let data = Bytes::from(vec![0x11u8; 64 * 1024]);
            let cid = net.import_content(nat_provider, &data);
            net.publish(nat_provider, cid.clone());
            net.run_until_quiet();
            assert!(
                net.publish_reports.last().unwrap().success,
                "NAT'ed peers can still *publish* records (they dial out)"
            );
            // Drop the outbound connections the publish walk opened — a
            // NAT'ed peer can serve over those (it dialed out), but here we
            // test reachability for a *fresh* requester.
            net.disconnect_all(nat_provider);

            net.retrieve(requester, cid.clone());
            net.run_until_quiet();
            let rr = net.retrieve_reports.last().unwrap();
            if dcutr {
                assert!(rr.success, "hole punching makes the NAT'ed host reachable: {rr:?}");
                assert_eq!(net.node_mut(requester).read_content(&cid).unwrap(), data);
            } else {
                assert!(!rr.success, "without DCUtR the NAT'ed host is unreachable");
            }
        }
    }

    #[test]
    fn table_refresh_keeps_tables_fresher() {
        // With periodic refresh, routing tables shed stale entries faster:
        // after hours of churn, the dialable fraction of an average
        // server's table is higher than without refresh.
        let build = |refresh: bool, seed: u64| {
            let pop = Population::generate(
                PopulationConfig {
                    size: 500,
                    nat_fraction: 0.4,
                    horizon: SimDuration::from_hours(8),
                    ..Default::default()
                },
                seed,
            );
            let cfg = NetworkConfig {
                table_refresh_interval: refresh.then(|| SimDuration::from_mins(10)),
                ..Default::default()
            };
            let mut net =
                IpfsNetwork::from_population(&pop, &[VantagePoint::EuCentral1], cfg, seed);
            net.run_for(SimDuration::from_hours(5));
            // Average dialable fraction across online servers' tables.
            let mut total = 0usize;
            let mut live = 0usize;
            for id in net.server_ids() {
                if !net.is_dialable(id) {
                    continue;
                }
                for info in net.k_bucket_entries(id) {
                    if let Some(t) = net.resolve(&info.peer) {
                        total += 1;
                        if net.is_dialable(t) {
                            live += 1;
                        }
                    }
                }
            }
            live as f64 / total.max(1) as f64
        };
        let with = build(true, 71);
        let without = build(false, 71);
        assert!(
            with > without,
            "refresh must keep tables fresher: with {with:.3} vs without {without:.3}"
        );
    }

    #[test]
    fn autonat_probe_matches_ground_truth() {
        use crate::AutonatVerdict;
        let mut net = small_net(300, 44);
        // Vantage node: public -> upgrades to Server.
        let v = net.vantage_ids(1)[0];
        assert_eq!(net.autonat_probe(v, 10), AutonatVerdict::Public);
        // A NAT'ed population node: stays Private.
        let nat = (0..net.len())
            .find(|&i| !net.is_dialable(i) && net.is_online(i))
            .expect("a NAT'ed online node exists");
        assert_eq!(net.autonat_probe(nat, 10), AutonatVerdict::Private);
    }

    #[test]
    fn connection_manager_prunes_lru() {
        let pop = Population::generate(
            PopulationConfig {
                size: 60,
                nat_fraction: 0.0,
                horizon: SimDuration::from_hours(2),
                ..Default::default()
            },
            42,
        );
        let cfg = NetworkConfig { max_connections: 5, ..Default::default() };
        let mut net = IpfsNetwork::from_population(&pop, &[VantagePoint::EuCentral1], cfg, 42);
        let hub = net.vantage_ids(1)[0];
        for other in 0..20 {
            net.connect(hub, other);
        }
        assert!(net.connection_count(hub) <= 5, "cap enforced");
        // The most recent connections survive.
        assert!(net.is_connected(hub, 19));
        assert!(!net.is_connected(hub, 0));
    }

    #[test]
    fn retriever_becomes_provider_republished() {
        let pop = Population::generate(
            PopulationConfig {
                size: 200,
                nat_fraction: 0.3,
                horizon: SimDuration::from_hours(6),
                ..Default::default()
            },
            21,
        );
        let cfg = NetworkConfig { retriever_becomes_provider: true, ..Default::default() };
        let mut net = IpfsNetwork::from_population(
            &pop,
            &[VantagePoint::EuCentral1, VantagePoint::UsWest1],
            cfg,
            21,
        );
        let [provider, requester] = net.vantage_ids(2)[..] else { panic!() };
        let data = Bytes::from(vec![5u8; 100_000]);
        let cid = net.import_content(provider, &data);
        net.publish(provider, cid.clone());
        net.run_until_quiet();
        net.retrieve(requester, cid.clone());
        net.run_until_quiet();
        assert!(net.retrieve_reports[0].success);
        // The requester now holds the content and has (silently) published.
        assert!(net.node_mut(requester).has_content(&cid));
    }

    #[test]
    fn single_provider_fetch_identical_across_session_knobs() {
        // Regression guard (fig10 shape): with exactly one provider the
        // session must degrade to the legacy single-provider message
        // sequence, so cranking the swarm knobs cannot move any phase
        // timing — or the event count — at all.
        let run = |cfg: NetworkConfig| {
            let pop = Population::generate(
                PopulationConfig {
                    size: 300,
                    nat_fraction: 0.3,
                    horizon: SimDuration::from_hours(6),
                    ..Default::default()
                },
                31,
            );
            let mut net = IpfsNetwork::from_population(
                &pop,
                &[VantagePoint::EuCentral1, VantagePoint::UsWest1],
                cfg,
                31,
            );
            let [provider, requester] = net.vantage_ids(2)[..] else { panic!() };
            let data = Bytes::from(vec![0x42; 700_000]);
            let cid = net.import_content(provider, &data);
            net.publish(provider, cid.clone());
            net.run_until_quiet();
            net.retrieve(requester, cid);
            net.run_until_quiet();
            let rr = net.retrieve_reports[0].clone();
            assert!(rr.success, "retrieve must succeed: {rr:?}");
            (
                rr.total,
                rr.bitswap_probe,
                rr.provider_walk,
                rr.peer_walk,
                rr.fetch,
                net.events_processed,
            )
        };
        let base = run(NetworkConfig::default());
        let tuned = run(NetworkConfig {
            duplicate_factor: 4,
            max_fetch_providers: 1,
            ..NetworkConfig::default()
        });
        assert_eq!(base, tuned, "session knobs must be inert with a single provider");
    }

    #[test]
    fn swarm_fetch_draws_blocks_from_multiple_providers() {
        // Five providers announce the same 2 MiB DAG; the requester's
        // session must fan the fetch out instead of draining one uplink.
        let pop = Population::generate(
            PopulationConfig {
                size: 300,
                nat_fraction: 0.3,
                horizon: SimDuration::from_hours(6),
                ..Default::default()
            },
            33,
        );
        // Records carry multiaddrs so every discovered provider is dialed
        // up front — the swarm assembles before the transfer finishes.
        let cfg = NetworkConfig { provider_records_carry_addrs: true, ..Default::default() };
        let mut net = IpfsNetwork::from_population(&pop, &VantagePoint::ALL, cfg, 33);
        let vs = net.vantage_ids(6);
        let (requester, providers) = (vs[0], &vs[1..]);
        // Non-repeating bytes (xorshift64): uniform fill would dedup every
        // 256 KiB leaf into a single CID and collapse the DAG to 2 blocks.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let data = Bytes::from(
            (0..2 * 1024 * 1024)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x as u8
                })
                .collect::<Vec<u8>>(),
        );
        let mut cid = None;
        for &p in providers {
            let c = net.import_content(p, &data);
            net.publish(p, c.clone());
            cid = Some(c);
        }
        let cid = cid.unwrap();
        net.run_until_quiet();
        assert!(net.publish_reports.iter().all(|r| r.success));

        net.retrieve(requester, cid.clone());
        net.run_until_quiet();
        let rr = net.retrieve_reports[0].clone();
        assert!(rr.success, "swarm retrieve must succeed: {rr:?}");
        assert_eq!(net.node_mut(requester).read_content(&cid).unwrap(), data);
        // 8 × 256 KiB leaves + root, all through the session layer.
        assert!(
            net.metrics.get(names::BITSWAP_SESSION_BLOCKS_RECEIVED) >= 9,
            "session counters must see the whole DAG: blocks={} wants={} via_bitswap={} fetch={:?}",
            net.metrics.get(names::BITSWAP_SESSION_BLOCKS_RECEIVED),
            net.metrics.get(names::BITSWAP_SESSION_WANTS_SENT),
            rr.via_bitswap,
            rr.fetch,
        );
        let serving =
            providers.iter().filter(|&&p| net.nodes[p].node.bitswap.counts_sent.block > 0).count();
        assert!(serving >= 2, "blocks must come from a swarm, not one uplink ({serving} served)");
        // Duplicate factor 1: nothing should be fetched twice.
        assert_eq!(net.metrics.get(names::BITSWAP_SESSION_DUP_BLOCKS), 0);
    }

    #[test]
    fn stitched_retrieval_trace_reconciles_with_its_report() {
        let mut net = small_net(400, 7);
        net.set_trace_config(TraceConfig::enabled());
        net.set_dtrace(DtraceConfig::collecting());
        let [provider, requester] = net.vantage_ids(2)[..] else { panic!() };
        let data = Bytes::from(vec![0xAB; 512 * 1024]);
        let cid = net.import_content(provider, &data);
        net.publish(provider, cid.clone());
        net.run_until_quiet();
        let op = net.retrieve(requester, cid);
        net.run_until_quiet();
        let rr = net.retrieve_reports[0].clone();
        assert!(rr.success, "retrieve must succeed: {rr:?}");

        let trace = net.take_trace(op).expect("tracing was on");
        let tree = net.stitched_trace(op, &trace).expect("op origin registered");
        // The distributed tree reconciles with the op report: same
        // envelope, and a critical path that never exceeds it (integer
        // nanoseconds, no tolerance).
        assert_eq!(tree.duration(), rr.total);
        assert!(tree.critical_path_duration() <= tree.duration());
        assert!(tree.critical_path_duration() > SimDuration::ZERO);

        fn collect(s: &crate::obs::span::Span, out: &mut Vec<String>) {
            out.push(s.label.clone());
            for c in &s.children {
                collect(c, out);
            }
        }
        let mut labels = Vec::new();
        collect(&tree.root, &mut labels);
        // Remote nodes contributed their own spans: DHT handler time for
        // the provider walk's RPCs and the provider's BLOCK serves.
        assert!(
            labels.iter().any(|l| l.starts_with("srv:GET_PROVIDERS@n")),
            "provider-walk handler spans missing: {labels:?}"
        );
        assert!(
            labels.iter().any(|l| l.starts_with("bs:block_serve@n")),
            "remote BLOCK serve spans missing: {labels:?}"
        );
        // Remote spans sit under requester-side causes, not at the root.
        let top_level: Vec<&String> = tree.root.children.iter().map(|c| &c.label).collect();
        assert!(
            top_level.iter().all(|l| !l.starts_with("srv:")),
            "handler spans must nest inside rpc spans: {top_level:?}"
        );
    }

    #[test]
    fn crashed_session_peer_triggers_a_reroute_postmortem() {
        let mut net = small_net(300, 8);
        net.set_trace_config(TraceConfig::enabled());
        net.set_dtrace(DtraceConfig::full(None));
        let [a, b, requester] = net.vantage_ids(3)[..] else { panic!() };
        // Non-repeating payload: a uniform fill would dedup every leaf
        // into one CID and leave too few wants to observe a re-route.
        let mut x = 0x0FEE_DFAC_EDEA_D123u64;
        let data = Bytes::from(
            (0..2 * 1024 * 1024)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x as u8
                })
                .collect::<Vec<u8>>(),
        );
        let cid = net.import_content(a, &data);
        let cid_b = net.import_content(b, &data);
        assert_eq!(cid, cid_b, "chunking is deterministic");
        net.connect(requester, a);
        net.connect(requester, b);
        let op = net.retrieve(requester, cid);
        // Crash peer `a` once the transfer is demonstrably under way but
        // unfinished: its outstanding wants must re-route to `b`.
        let mut crashed = false;
        let mut t = SimTime::ZERO;
        while net.retrieve_reports.is_empty() {
            t += SimDuration::from_millis(5);
            assert!(t < SimTime::ZERO + SimDuration::from_mins(5), "retrieval livelocked");
            net.run_until(t);
            // Crash once leaf transfers are under way (root plus at least
            // one leaf landed): leaf wants are past their WANT-HAVE probe
            // and in flight, which is what a mid-fetch loss re-routes.
            if !crashed
                && net.retrieve_reports.is_empty()
                && net.metrics.get(names::BITSWAP_BLOCKS_STORED) >= 2
            {
                net.on_churn(a, false);
                crashed = true;
            }
        }
        assert!(crashed, "op completed before the first leaf landed");
        let rr = net.retrieve_reports[0].clone();
        assert!(rr.success, "surviving peer must complete the swarm: {rr:?}");
        let pms = net.drain_postmortems();
        assert_eq!(pms.len(), 1, "one flagged op, one post-mortem");
        let (pm_op, text) = &pms[0];
        assert_eq!(*pm_op, op);
        assert!(text.contains("outcome=rerouted"), "{text}");
        assert!(text.contains(&format!("peers lost mid-op: n{a}")), "{text}");
        assert!(text.contains("bs:reroute"), "{text}");
        assert!(text.contains(&format!("-> n{b}")), "{text}");
        assert!(net.drain_postmortems().is_empty(), "drain removes what it returns");
    }
}
