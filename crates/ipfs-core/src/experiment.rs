//! The six-vantage-point DHT performance experiment of §4.3.
//!
//! "We use six virtual machines in six different regions on AWS. ... Upon
//! each iteration, a single node announces a new 0.5 MB object (i.e., CID)
//! to the network. Following this, all other nodes retrieve the object.
//! ... As soon as all remaining nodes have completed this process, they
//! disconnect to prevent the next retrieval operation being resolved
//! through Bitswap and instead resort to the DHT for lookup and
//! discovery."
//!
//! The output feeds Table 1 (operation counts), Table 4 (per-region
//! percentiles), Figure 9 (delay CDFs) and Figure 10 (retrieval stretch).

use crate::netsim::{IpfsNetwork, NetworkConfig};
use crate::ops::{PublishReport, RetrieveReport};
use bytes::Bytes;
use merkledag::BlockStore;
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration};

/// Configuration of a DHT-perf run.
#[derive(Debug, Clone, Copy)]
pub struct DhtPerfConfig {
    /// Peer population size (the live network had ~50 k online DHT
    /// servers; smaller populations preserve the delay structure because
    /// walk length grows only logarithmically).
    pub population: usize,
    /// NAT'ed fraction (paper §5.1: 45.5 % of peers always unreachable).
    pub nat_fraction: f64,
    /// Iterations *per publishing region* (the paper ran ~547).
    pub iterations_per_region: usize,
    /// Benchmark object size (paper: 0.5 MB).
    pub object_size: usize,
    /// Master seed.
    pub seed: u64,
    /// Network-level configuration.
    pub network: NetworkConfig,
}

impl Default for DhtPerfConfig {
    fn default() -> Self {
        DhtPerfConfig {
            population: 2_000,
            nat_fraction: 0.455,
            iterations_per_region: 20,
            object_size: 512 * 1024,
            seed: 42,
            network: NetworkConfig::default(),
        }
    }
}

/// Results: per-vantage publish and retrieve reports.
#[derive(Debug, Default)]
pub struct DhtPerfResults {
    /// (publishing region, report) pairs.
    pub publishes: Vec<(VantagePoint, PublishReport)>,
    /// (retrieving region, report) pairs.
    pub retrieves: Vec<(VantagePoint, RetrieveReport)>,
}

impl DhtPerfResults {
    /// Publish totals (seconds) for one region.
    pub fn publish_totals(&self, vp: VantagePoint) -> Vec<f64> {
        self.publishes
            .iter()
            .filter(|(v, _)| *v == vp)
            .map(|(_, r)| r.total.as_secs_f64())
            .collect()
    }

    /// Retrieve totals (seconds) for one region.
    pub fn retrieve_totals(&self, vp: VantagePoint) -> Vec<f64> {
        self.retrieves
            .iter()
            .filter(|(v, _)| *v == vp)
            .map(|(_, r)| r.total.as_secs_f64())
            .collect()
    }

    /// Overall retrieval success rate (the paper reports 100 %).
    pub fn retrieve_success_rate(&self) -> f64 {
        if self.retrieves.is_empty() {
            return 0.0;
        }
        self.retrieves.iter().filter(|(_, r)| r.success).count() as f64
            / self.retrieves.len() as f64
    }
}

/// The experiment runner.
pub struct DhtPerfExperiment {
    cfg: DhtPerfConfig,
}

impl DhtPerfExperiment {
    /// Creates a runner.
    pub fn new(cfg: DhtPerfConfig) -> DhtPerfExperiment {
        DhtPerfExperiment { cfg }
    }

    /// Runs the full experiment and returns per-operation reports.
    pub fn run(&self) -> DhtPerfResults {
        let cfg = &self.cfg;
        // Horizon: generous upper bound on total virtual time, so churn
        // schedules cover the whole run.
        let est_secs =
            (cfg.iterations_per_region as u64).saturating_mul(6).saturating_mul(200).max(3600 * 6);
        let pop = Population::generate(
            PopulationConfig {
                size: cfg.population,
                nat_fraction: cfg.nat_fraction,
                horizon: SimDuration::from_secs(est_secs),
                ..Default::default()
            },
            cfg.seed,
        );
        let mut net = IpfsNetwork::from_population(&pop, &VantagePoint::ALL, cfg.network, cfg.seed);
        let vantage_ids = net.vantage_ids(VantagePoint::ALL.len());
        let mut results = DhtPerfResults::default();

        for round in 0..cfg.iterations_per_region {
            for (vi, &publisher) in vantage_ids.iter().enumerate() {
                let vp = VantagePoint::ALL[vi];
                // Fresh, unique object per iteration (new CID each time).
                let mut data = vec![0u8; cfg.object_size];
                let tag = (round * 6 + vi) as u64;
                data[..8].copy_from_slice(&tag.to_be_bytes());
                data[8] = 0xA5;
                let data = Bytes::from(data);
                let cid = net.import_content(publisher, &data);

                let n_pub_before = net.publish_reports.len();
                net.publish(publisher, cid.clone());
                net.run_until_quiet();
                for rep in net.publish_reports.drain(n_pub_before..).collect::<Vec<_>>() {
                    results.publishes.push((vp, rep));
                }
                // §4.3 reset: drop the connections the publication walk
                // opened, so no retrieval can be satisfied over a warm
                // Bitswap connection to the publisher.
                net.disconnect_all(publisher);

                // All other vantage nodes retrieve, then disconnect and
                // forget the provider's address (§4.3's reset).
                for (ri, &requester) in vantage_ids.iter().enumerate() {
                    if requester == publisher {
                        continue;
                    }
                    let rvp = VantagePoint::ALL[ri];
                    let n_ret_before = net.retrieve_reports.len();
                    net.retrieve(requester, cid.clone());
                    net.run_until_quiet();
                    for rep in net.retrieve_reports.drain(n_ret_before..).collect::<Vec<_>>() {
                        results.retrieves.push((rvp, rep));
                    }
                    net.disconnect_all(requester);
                    let publisher_peer = net.peer_id(publisher).clone();
                    net.forget_address(requester, &publisher_peer);
                    // Drop the fetched content so the next iteration's
                    // retrieval is never served locally.
                    let n = net.node_mut(requester);
                    let cids: Vec<_> = n.store.cids().cloned().collect();
                    for c in cids {
                        n.store.delete(&c);
                    }
                }
                net.disconnect_all(publisher);
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_experiment_produces_full_reports() {
        let cfg = DhtPerfConfig {
            population: 400,
            iterations_per_region: 2,
            seed: 5,
            ..Default::default()
        };
        let results = DhtPerfExperiment::new(cfg).run();
        // 2 rounds x 6 regions publishes; each publish has 5 retrievals.
        assert_eq!(results.publishes.len(), 12);
        assert_eq!(results.retrieves.len(), 60);
        // §6.2: "We observe success rate of 100%".
        assert!(
            results.retrieve_success_rate() > 0.95,
            "success rate {}",
            results.retrieve_success_rate()
        );
        // Every region appears.
        for vp in VantagePoint::ALL {
            assert_eq!(results.publish_totals(vp).len(), 2);
            assert_eq!(results.retrieve_totals(vp).len(), 10);
        }
    }

    #[test]
    fn publication_slower_than_retrieval() {
        // §6.2: "Overall, retrieval performance is much faster than
        // publication" (walk must find 20 closest vs. a single record).
        let cfg = DhtPerfConfig {
            population: 500,
            iterations_per_region: 3,
            seed: 6,
            ..Default::default()
        };
        let results = DhtPerfExperiment::new(cfg).run();
        let med = |mut v: Vec<f64>| {
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let pub_med = med(results.publishes.iter().map(|(_, r)| r.total.as_secs_f64()).collect());
        let ret_med = med(results.retrieves.iter().map(|(_, r)| r.total.as_secs_f64()).collect());
        assert!(
            pub_med > ret_med,
            "publish median {pub_med:.2}s should exceed retrieve median {ret_med:.2}s"
        );
    }
}
