//! Observability layer: a metrics registry plus a structured per-operation
//! event trace.
//!
//! The simulation stack emits two kinds of telemetry:
//!
//! * **Metrics** — named monotonic counters and raw-sample histograms kept
//!   in a [`MetricsRegistry`]. Counters cover the surfaces the paper
//!   measures: DHT RPC volume by type (§3.1), dial attempts and failures
//!   split by transport timeout class (§6.1), Bitswap message counts by
//!   type (§3.2), provider-record lifecycle (§3.1), connection-manager
//!   prunes, gateway cache tiers (§6.3) and churn transitions (§4.1).
//!   Scripted fault injection (the `faultsim` crate) adds the `fault_*`
//!   family — partitions started/healed, dials blocked or spiked by the
//!   oracle, warm connections severed, messages cut or lost, crash-wave
//!   victims — plus the `fault_recovery_secs` histogram of
//!   time-to-first-successful-retrieval after heal.
//! * **Traces** — a per-[`OpId`] sequence of timestamped [`TraceEvent`]s
//!   recording the §3.2 content-retrieval pipeline (Bitswap probe →
//!   provider walk → peer walk → dial → fetch) and the publish/IPNS
//!   equivalents, collected by a [`Tracer`].
//!
//! Tracing is off by default. [`Tracer::record_with`] takes a closure that
//! builds the event, so a disabled tracer costs exactly one branch per
//! call site and performs no allocation.

use crate::ops::OpId;
use simnet::SimTime;
use std::collections::{BTreeMap, HashMap};

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Registry of named counters and histograms.
///
/// Counter names are `&'static str` so incrementing never allocates.
/// Histograms store raw `f64` samples; at simulation scale (thousands of
/// ops) this is small and gives exact percentiles at export time.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Vec<f64>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counter `name` by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increments counter `name` by `n`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Sets counter `name` to an absolute value (for gauges sampled at
    /// export time, e.g. cache eviction totals owned by another struct).
    pub fn set(&mut self, name: &'static str, value: u64) {
        self.counters.insert(name, value);
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one sample into histogram `name`.
    pub fn observe(&mut self, name: &'static str, sample: f64) {
        self.histograms.entry(name).or_default().push(sample);
    }

    /// Raw samples of histogram `name` (empty slice if never touched).
    pub fn samples(&self, name: &str) -> &[f64] {
        self.histograms.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates counters whose name starts with `prefix`, in name order.
    /// Used by report renderers to pull out a subsystem's counter family
    /// (e.g. the `fault_*` counters the fault-injection layer emits:
    /// partitions started/healed, dials blocked or spiked by the oracle,
    /// connections severed, messages cut or lost, nodes crashed).
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'static str, u64)> + 'a {
        self.counters().filter(move |(k, _)| k.starts_with(prefix))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &[f64])> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v.as_slice()))
    }

    /// Folds another registry into this one (counters add, samples append).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k).or_default().extend_from_slice(v);
        }
    }

    /// Serialises the registry as a JSON object:
    /// `{"counters": {..}, "histograms": {"name": {"n": .., "mean": ..,
    /// "p50": .., "p90": .., "p99": ..}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, samples)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let n = sorted.len();
            let mean = if n == 0 { 0.0 } else { sorted.iter().sum::<f64>() / n as f64 };
            out.push_str(&format!(
                "\"{k}\":{{\"n\":{n},\"mean\":{mean},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                pct(&sorted, 0.50),
                pct(&sorted, 0.90),
                pct(&sorted, 0.99),
            ));
        }
        out.push_str("}}");
        out
    }

    /// Flattens counters into `(name, value)` CSV rows.
    pub fn to_csv_rows(&self) -> Vec<(String, u64)> {
        self.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }
}

/// Nearest-rank percentile over pre-sorted samples.
fn pct(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

/// Transport class of a failed dial, following the §6.1 latency split:
/// immediate connection-refused, the 5 s TCP/QUIC timeout, and the 45 s
/// WebSocket timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DialClass {
    /// Target port closed: failure reported almost immediately.
    FastRefuse,
    /// TCP / QUIC dial timeout (5 s).
    Timeout5s,
    /// WebSocket dial timeout (45 s).
    Websocket45s,
}

impl DialClass {
    /// Metric/trace label for the class.
    pub fn label(self) -> &'static str {
        match self {
            DialClass::FastRefuse => "fast_refuse",
            DialClass::Timeout5s => "timeout_5s",
            DialClass::Websocket45s => "timeout_45s",
        }
    }

    /// Counter name bumped when a dial fails with this class.
    pub fn metric(self) -> &'static str {
        match self {
            DialClass::FastRefuse => "dial_failed_fast_refuse",
            DialClass::Timeout5s => "dial_failed_timeout_5s",
            DialClass::Websocket45s => "dial_failed_timeout_45s",
        }
    }
}

/// One step of an operation's lifecycle, as observed by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// The operation was submitted ("publish", "retrieve", ...).
    OpStarted {
        /// Operation kind label.
        kind: &'static str,
    },
    /// The operation entered a pipeline phase ("bitswap_probe",
    /// "provider_walk", "peer_walk", "fetch", "walk", "rpc_batch").
    PhaseEntered {
        /// Phase label.
        phase: &'static str,
    },
    /// A DHT RPC left this node on behalf of the operation.
    RpcSent {
        /// Request type label ("FIND_NODE", "GET_PROVIDERS", ...).
        kind: &'static str,
        /// Destination node.
        peer: usize,
    },
    /// A DHT RPC response came back.
    RpcOk {
        /// Responding node.
        peer: usize,
    },
    /// A DHT RPC failed (unreachable peer / dial timeout).
    RpcFailed {
        /// Unreachable node.
        peer: usize,
    },
    /// A DHT walk converged; carries the walk's final statistics.
    QueryConverged {
        /// RPCs issued by the walk.
        rpcs: u64,
        /// Responses received.
        responses: u64,
        /// Failed RPCs.
        failures: u64,
        /// Deepest hop reached.
        hops: u32,
    },
    /// A dial to `peer` began.
    DialStarted {
        /// Dialed node.
        peer: usize,
    },
    /// A dial succeeded.
    DialOk {
        /// Dialed node.
        peer: usize,
        /// Whether an existing warm connection was reused.
        warm: bool,
    },
    /// A dial failed.
    DialFailed {
        /// Dialed node.
        peer: usize,
        /// Failure class (§6.1 timeout split).
        class: DialClass,
    },
    /// A timer guarding the operation was armed.
    TimerArmed {
        /// Timer label ("bitswap_probe", ...).
        timer: &'static str,
    },
    /// A timer guarding the operation fired.
    TimerFired {
        /// Timer label.
        timer: &'static str,
    },
    /// A Bitswap message left this node for the operation.
    BitswapSent {
        /// Message type label ("WANT_HAVE", "BLOCK", ...).
        kind: &'static str,
        /// Destination node.
        peer: usize,
    },
    /// A Bitswap message arrived for the operation.
    BitswapReceived {
        /// Message type label.
        kind: &'static str,
        /// Sending node.
        peer: usize,
    },
    /// A wanted block arrived and was stored.
    BlockReceived,
    /// The provider's address was already cached, skipping the peer walk
    /// (the multiaddress shortcut of §3.2).
    AddrBookHit,
    /// The operation finished.
    OpFinished {
        /// Whether it succeeded.
        success: bool,
    },
}

impl TraceEventKind {
    /// Snake-case label identifying the event variant.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEventKind::OpStarted { .. } => "op_started",
            TraceEventKind::PhaseEntered { .. } => "phase_entered",
            TraceEventKind::RpcSent { .. } => "rpc_sent",
            TraceEventKind::RpcOk { .. } => "rpc_ok",
            TraceEventKind::RpcFailed { .. } => "rpc_failed",
            TraceEventKind::QueryConverged { .. } => "query_converged",
            TraceEventKind::DialStarted { .. } => "dial_started",
            TraceEventKind::DialOk { .. } => "dial_ok",
            TraceEventKind::DialFailed { .. } => "dial_failed",
            TraceEventKind::TimerArmed { .. } => "timer_armed",
            TraceEventKind::TimerFired { .. } => "timer_fired",
            TraceEventKind::BitswapSent { .. } => "bitswap_sent",
            TraceEventKind::BitswapReceived { .. } => "bitswap_received",
            TraceEventKind::BlockReceived => "block_received",
            TraceEventKind::AddrBookHit => "addr_book_hit",
            TraceEventKind::OpFinished { .. } => "op_finished",
        }
    }

    /// Variant payload as JSON key/value pairs (without braces), empty for
    /// payload-free variants.
    fn json_fields(&self) -> String {
        match self {
            TraceEventKind::OpStarted { kind } => format!(",\"kind\":\"{kind}\""),
            TraceEventKind::PhaseEntered { phase } => format!(",\"phase\":\"{phase}\""),
            TraceEventKind::RpcSent { kind, peer } => {
                format!(",\"kind\":\"{kind}\",\"peer\":{peer}")
            }
            TraceEventKind::RpcOk { peer } | TraceEventKind::RpcFailed { peer } => {
                format!(",\"peer\":{peer}")
            }
            TraceEventKind::QueryConverged { rpcs, responses, failures, hops } => format!(
                ",\"rpcs\":{rpcs},\"responses\":{responses},\"failures\":{failures},\"hops\":{hops}"
            ),
            TraceEventKind::DialStarted { peer } => format!(",\"peer\":{peer}"),
            TraceEventKind::DialOk { peer, warm } => format!(",\"peer\":{peer},\"warm\":{warm}"),
            TraceEventKind::DialFailed { peer, class } => {
                format!(",\"peer\":{peer},\"class\":\"{}\"", class.label())
            }
            TraceEventKind::TimerArmed { timer } | TraceEventKind::TimerFired { timer } => {
                format!(",\"timer\":\"{timer}\"")
            }
            TraceEventKind::BitswapSent { kind, peer }
            | TraceEventKind::BitswapReceived { kind, peer } => {
                format!(",\"kind\":\"{kind}\",\"peer\":{peer}")
            }
            TraceEventKind::BlockReceived | TraceEventKind::AddrBookHit => String::new(),
            TraceEventKind::OpFinished { success } => format!(",\"success\":{success}"),
        }
    }
}

/// One timestamped trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated time the event occurred.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The accumulated trace of one operation.
#[derive(Debug, Clone, Default)]
pub struct OpTrace {
    /// Events in emission (and therefore time) order.
    pub events: Vec<TraceEvent>,
}

impl OpTrace {
    /// Labels of the `PhaseEntered` events, in order — the observed
    /// pipeline of the operation.
    pub fn phases(&self) -> Vec<&'static str> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::PhaseEntered { phase } => Some(phase),
                _ => None,
            })
            .collect()
    }

    /// Index of the first event matching `pred`, if any.
    pub fn position<F: Fn(&TraceEventKind) -> bool>(&self, pred: F) -> Option<usize> {
        self.events.iter().position(|e| pred(&e.kind))
    }

    /// Whether any event matches `pred`.
    pub fn contains<F: Fn(&TraceEventKind) -> bool>(&self, pred: F) -> bool {
        self.position(pred).is_some()
    }

    /// Serialises the trace as a JSON array of event objects, each with
    /// `t_us` (microseconds of simulated time), `event`, and the variant's
    /// payload fields.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"t_us\":{},\"event\":\"{}\"{}}}",
                ev.at.as_nanos() / 1_000,
                ev.kind.label(),
                ev.kind.json_fields()
            ));
        }
        out.push(']');
        out
    }
}

/// Switches for trace collection.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceConfig {
    /// Master switch: when false, [`Tracer::record_with`] returns after a
    /// single branch and never invokes its closure.
    pub enabled: bool,
}

impl TraceConfig {
    /// A config with tracing on.
    pub fn enabled() -> Self {
        TraceConfig { enabled: true }
    }
}

/// Collects [`OpTrace`]s for in-flight and completed operations.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    config: TraceConfig,
    traces: HashMap<OpId, OpTrace>,
}

impl Tracer {
    /// Creates a tracer with the given config.
    pub fn new(config: TraceConfig) -> Self {
        Tracer { config, traces: HashMap::new() }
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// Replaces the config (existing traces are kept).
    pub fn set_config(&mut self, config: TraceConfig) {
        self.config = config;
    }

    /// Records an event for `op` at time `at`. The closure that builds the
    /// event only runs when tracing is enabled, so the disabled path is a
    /// single branch with no allocation.
    #[inline]
    pub fn record_with<F: FnOnce() -> TraceEventKind>(&mut self, op: OpId, at: SimTime, f: F) {
        if !self.config.enabled {
            return;
        }
        self.traces.entry(op).or_default().events.push(TraceEvent { at, kind: f() });
    }

    /// The trace collected for `op`, if any.
    pub fn trace(&self, op: OpId) -> Option<&OpTrace> {
        self.traces.get(&op)
    }

    /// Removes and returns the trace collected for `op`.
    pub fn take(&mut self, op: OpId) -> Option<OpTrace> {
        self.traces.remove(&op)
    }

    /// Number of operations with collected traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether no traces have been collected.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Drops all collected traces.
    pub fn clear(&mut self) {
        self.traces.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDuration;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.get("dials_attempted"), 0);
        reg.incr("dials_attempted");
        reg.add("dials_attempted", 4);
        assert_eq!(reg.get("dials_attempted"), 5);
        reg.set("gauge", 42);
        reg.set("gauge", 17);
        assert_eq!(reg.get("gauge"), 17);
    }

    #[test]
    fn histograms_store_raw_samples() {
        let mut reg = MetricsRegistry::new();
        for i in 0..10 {
            reg.observe("walk_rpcs", i as f64);
        }
        assert_eq!(reg.samples("walk_rpcs").len(), 10);
        assert_eq!(reg.samples("missing"), &[] as &[f64]);
    }

    #[test]
    fn merge_adds_counters_and_appends_samples() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.add("x", 2);
        b.add("x", 3);
        b.incr("y");
        b.observe("h", 1.0);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
        assert_eq!(a.samples("h"), &[1.0]);
    }

    #[test]
    fn json_export_is_well_formed() {
        let mut reg = MetricsRegistry::new();
        reg.add("rpcs", 7);
        reg.observe("latency", 1.0);
        reg.observe("latency", 3.0);
        let json = reg.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rpcs\":7"));
        assert!(json.contains("\"n\":2"));
        assert!(json.contains("\"mean\":2"));
    }

    #[test]
    fn disabled_tracer_never_invokes_closure() {
        let mut tracer = Tracer::new(TraceConfig::default());
        let mut called = false;
        tracer.record_with(OpId(1), SimTime::ZERO, || {
            called = true;
            TraceEventKind::BlockReceived
        });
        assert!(!called, "closure must not run when tracing is disabled");
        assert!(tracer.is_empty(), "no trace storage allocated when disabled");
    }

    #[test]
    fn enabled_tracer_collects_in_order() {
        let mut tracer = Tracer::new(TraceConfig::enabled());
        let op = OpId(9);
        tracer.record_with(op, SimTime::ZERO, || TraceEventKind::OpStarted { kind: "retrieve" });
        tracer.record_with(op, SimTime::ZERO + SimDuration::from_secs(1), || {
            TraceEventKind::PhaseEntered { phase: "provider_walk" }
        });
        let trace = tracer.trace(op).unwrap();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.phases(), vec!["provider_walk"]);
        let taken = tracer.take(op).unwrap();
        assert_eq!(taken.events.len(), 2);
        assert!(tracer.trace(op).is_none());
    }

    #[test]
    fn trace_json_includes_timestamps_and_payload() {
        let mut tracer = Tracer::new(TraceConfig::enabled());
        let op = OpId(3);
        tracer.record_with(op, SimTime::ZERO + SimDuration::from_millis(1500), || {
            TraceEventKind::DialFailed { peer: 12, class: DialClass::Timeout5s }
        });
        let json = tracer.trace(op).unwrap().to_json();
        assert_eq!(
            json,
            "[{\"t_us\":1500000,\"event\":\"dial_failed\",\"peer\":12,\"class\":\"timeout_5s\"}]"
        );
    }
}
