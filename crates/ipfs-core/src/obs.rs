//! Observability layer: a metrics registry plus a structured per-operation
//! event trace.
//!
//! The simulation stack emits two kinds of telemetry:
//!
//! * **Metrics** — named monotonic counters and raw-sample histograms kept
//!   in a [`MetricsRegistry`]. Counters cover the surfaces the paper
//!   measures: DHT RPC volume by type (§3.1), dial attempts and failures
//!   split by transport timeout class (§6.1), Bitswap message counts by
//!   type (§3.2), provider-record lifecycle (§3.1), connection-manager
//!   prunes, gateway cache tiers (§6.3) and churn transitions (§4.1).
//!   Scripted fault injection (the `faultsim` crate) adds the `fault_*`
//!   family — partitions started/healed, dials blocked or spiked by the
//!   oracle, warm connections severed, messages cut or lost, crash-wave
//!   victims — plus the `fault_recovery_secs` histogram of
//!   time-to-first-successful-retrieval after heal.
//! * **Traces** — a per-[`OpId`] sequence of timestamped [`TraceEvent`]s
//!   recording the §3.2 content-retrieval pipeline (Bitswap probe →
//!   provider walk → peer walk → dial → fetch) and the publish/IPNS
//!   equivalents, collected by a [`Tracer`].
//!
//! Tracing is off by default. [`Tracer::record_with`] takes a closure that
//! builds the event, so a disabled tracer costs exactly one branch per
//! call site and performs no allocation.
//!
//! Three submodules build on this layer: [`names`] holds every canonical
//! metric name as a constant, [`span`] folds an [`OpTrace`] into a causal
//! span tree with critical-path analysis and the §6.2
//! [`LatencyBreakdown`](span::LatencyBreakdown), and [`timeseries`]
//! buckets counter deltas and samples into windows of simulated time
//! (the Fig. 4 longitudinal view).

use crate::ops::OpId;
use simnet::SimTime;
use std::collections::{BTreeMap, HashMap};

pub mod dtrace;
pub mod names;
pub mod span;
pub mod timeseries;

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// How a [`MetricsRegistry`] stores histogram samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistogramMode {
    /// Raw `Vec<f64>` samples: exact percentiles, memory linear in the
    /// sample count. Right for small runs and anything a test pins.
    #[default]
    Exact,
    /// Log-bucketed [`StreamingHistogram`]s: memory is O(buckets)
    /// regardless of sample count, percentiles carry a bounded relative
    /// error (≤ ½·(γ−1) ≈ 2.5 % at the built-in growth factor). Right
    /// for paper-scale runs.
    Streaming,
}

/// A log-bucketed streaming histogram: geometric buckets with growth
/// factor [`StreamingHistogram::GROWTH`], so a positive sample `v` lands
/// in bucket `⌊ln v / ln γ⌋` and any percentile estimate (the bucket
/// midpoint) is within `(γ−1)/2` relative error of the true value.
/// Zero or negative samples are counted below every bucket and estimated
/// as `0.0` (the stack's histograms — latencies, counts — are
/// non-negative). Memory is the number of *occupied* buckets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamingHistogram {
    buckets: BTreeMap<i32, u64>,
    zero_or_less: u64,
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl StreamingHistogram {
    /// Geometric bucket growth factor γ.
    pub const GROWTH: f64 = 1.05;

    fn bucket_of(v: f64) -> i32 {
        (v.ln() / Self::GROWTH.ln()).floor() as i32
    }

    fn bucket_estimate(idx: i32) -> f64 {
        // Arithmetic midpoint of [γ^i, γ^(i+1)).
        Self::GROWTH.powi(idx) * (1.0 + Self::GROWTH) / 2.0
    }

    /// Records one (finite) sample.
    pub fn observe(&mut self, v: f64) {
        if v > 0.0 {
            *self.buckets.entry(Self::bucket_of(v)).or_insert(0) += 1;
        } else {
            self.zero_or_less += 1;
        }
        self.sum += v;
        self.min = if self.n == 0 { v } else { self.min.min(v) };
        self.max = if self.n == 0 { v } else { self.max.max(v) };
        self.n += 1;
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Exact arithmetic mean (the sum is tracked exactly).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Occupied buckets — the histogram's memory footprint.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len() + usize::from(self.zero_or_less > 0)
    }

    /// Nearest-rank percentile estimate (`q` in `0.0..=1.0`), clamped to
    /// the observed `[min, max]`.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let rank = ((self.n - 1) as f64 * q).round() as u64;
        let mut cum = self.zero_or_less;
        if rank < cum {
            return 0.0f64.clamp(self.min, self.max);
        }
        for (&idx, &c) in &self.buckets {
            cum += c;
            if rank < cum {
                return Self::bucket_estimate(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another streaming histogram into this one.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
        self.zero_or_less += other.zero_or_less;
        self.sum += other.sum;
        if other.n > 0 {
            self.min = if self.n == 0 { other.min } else { self.min.min(other.min) };
            self.max = if self.n == 0 { other.max } else { self.max.max(other.max) };
        }
        self.n += other.n;
    }
}

/// Summary statistics of one histogram, computed the same way in both
/// [`HistogramMode`]s (exactly in `Exact`, within the bucket error bound
/// in `Streaming`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramStats {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean (exact in both modes).
    pub mean: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// One histogram's storage.
#[derive(Debug, Clone, PartialEq)]
enum Hist {
    Exact(Vec<f64>),
    Streaming(StreamingHistogram),
}

impl Hist {
    fn new(mode: HistogramMode) -> Hist {
        match mode {
            HistogramMode::Exact => Hist::Exact(Vec::new()),
            HistogramMode::Streaming => Hist::Streaming(StreamingHistogram::default()),
        }
    }

    fn observe(&mut self, sample: f64) {
        match self {
            Hist::Exact(v) => v.push(sample),
            Hist::Streaming(h) => h.observe(sample),
        }
    }

    fn stats(&self) -> HistogramStats {
        match self {
            Hist::Exact(samples) => {
                let mut sorted = samples.clone();
                sorted.sort_by(f64::total_cmp);
                let n = sorted.len();
                let mean = if n == 0 { 0.0 } else { sorted.iter().sum::<f64>() / n as f64 };
                HistogramStats {
                    n,
                    mean,
                    p50: pct(&sorted, 0.50),
                    p90: pct(&sorted, 0.90),
                    p99: pct(&sorted, 0.99),
                }
            }
            Hist::Streaming(h) => HistogramStats {
                n: h.count() as usize,
                mean: h.mean(),
                p50: h.percentile(0.50),
                p90: h.percentile(0.90),
                p99: h.percentile(0.99),
            },
        }
    }

    fn footprint(&self) -> usize {
        match self {
            Hist::Exact(v) => v.len(),
            Hist::Streaming(h) => h.bucket_count(),
        }
    }
}

/// Dense-slot handle to one counter, resolved once with
/// [`MetricsRegistry::counter_handle`]. Bumping through a handle is a
/// bounds-checked array write — no string hashing, no tree walk — which is
/// what per-event simulation fast paths use. Handles stay valid for the
/// registry that issued them (and its clones); names never un-register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// Dense-slot handle to one histogram (see [`CounterHandle`]), resolved
/// once with [`MetricsRegistry::histogram_handle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramHandle(usize);

/// Backing storage for one counter.
#[derive(Debug, Clone, Default)]
struct CounterSlot {
    value: u64,
    /// Whether incr/add/set ever hit this slot. Resolving a handle alone
    /// must not surface the counter in exports — pre-registered hot
    /// counters would otherwise litter every report with zero rows.
    touched: bool,
}

/// Backing storage for one histogram.
#[derive(Debug, Clone)]
struct HistSlot {
    hist: Hist,
    /// Whether any sample was ever recorded (same rationale as
    /// [`CounterSlot::touched`]).
    touched: bool,
}

/// Registry of named counters and histograms.
///
/// Counter names are `&'static str` so incrementing never allocates. The
/// string-keyed API (`incr`/`add`/`observe`) pays one name lookup per call
/// and suits cold paths; hot paths resolve a [`CounterHandle`] /
/// [`HistogramHandle`] once and hit the dense slot vector directly.
/// Name-ordered iteration (and therefore every export) is unchanged: the
/// name index is a `BTreeMap` pointing into the slots.
///
/// Histograms are stored per the registry's [`HistogramMode`]: exact raw
/// samples by default (small runs, exact percentiles at export time), or
/// log-bucketed streaming histograms for paper-scale runs
/// ([`MetricsRegistry::with_histogram_mode`]).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counter_index: BTreeMap<&'static str, usize>,
    counter_slots: Vec<CounterSlot>,
    hist_index: BTreeMap<&'static str, usize>,
    hist_slots: Vec<HistSlot>,
    mode: HistogramMode,
}

impl MetricsRegistry {
    /// Creates an empty registry in [`HistogramMode::Exact`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry with the given histogram mode.
    pub fn with_histogram_mode(mode: HistogramMode) -> Self {
        MetricsRegistry { mode, ..Default::default() }
    }

    /// The registry's histogram mode.
    pub fn histogram_mode(&self) -> HistogramMode {
        self.mode
    }

    /// Resolves (registering if needed) the slot for counter `name`.
    fn counter_slot(&mut self, name: &'static str) -> usize {
        let slots = &mut self.counter_slots;
        *self.counter_index.entry(name).or_insert_with(|| {
            slots.push(CounterSlot::default());
            slots.len() - 1
        })
    }

    /// Resolves (registering if needed) the slot for histogram `name`.
    fn hist_slot(&mut self, name: &'static str) -> usize {
        let slots = &mut self.hist_slots;
        let mode = self.mode;
        *self.hist_index.entry(name).or_insert_with(|| {
            slots.push(HistSlot { hist: Hist::new(mode), touched: false });
            slots.len() - 1
        })
    }

    /// Resolves a dense handle for counter `name`. Resolution pays the
    /// one-off name lookup; every subsequent [`MetricsRegistry::incr_handle`]
    /// / [`MetricsRegistry::add_handle`] is an array bump. Registration
    /// alone does not surface the counter in exports.
    pub fn counter_handle(&mut self, name: &'static str) -> CounterHandle {
        CounterHandle(self.counter_slot(name))
    }

    /// Resolves a dense handle for histogram `name` (see
    /// [`MetricsRegistry::counter_handle`]).
    pub fn histogram_handle(&mut self, name: &'static str) -> HistogramHandle {
        HistogramHandle(self.hist_slot(name))
    }

    /// Resolves a dense handle for histogram `name`, forcing that one
    /// histogram into [`HistogramMode::Streaming`] regardless of the
    /// registry-wide mode. Right for per-event hot-path histograms whose
    /// exact storage would grow with the sample count (e.g. per-peer
    /// Bitswap latencies). Samples already recorded in exact mode are
    /// re-observed into buckets, so the conversion loses no counts.
    pub fn histogram_handle_streaming(&mut self, name: &'static str) -> HistogramHandle {
        let i = self.hist_slot(name);
        let slot = &mut self.hist_slots[i];
        if let Hist::Exact(samples) = &slot.hist {
            let mut h = StreamingHistogram::default();
            for &s in samples {
                h.observe(s);
            }
            slot.hist = Hist::Streaming(h);
        }
        HistogramHandle(i)
    }

    /// Increments the counter behind `h` by one (no name lookup).
    #[inline]
    pub fn incr_handle(&mut self, h: CounterHandle) {
        self.add_handle(h, 1);
    }

    /// Increments the counter behind `h` by `n` (no name lookup).
    #[inline]
    pub fn add_handle(&mut self, h: CounterHandle, n: u64) {
        let slot = &mut self.counter_slots[h.0];
        slot.value += n;
        slot.touched = true;
    }

    /// Records one sample into the histogram behind `h` (no name lookup).
    /// Same non-finite guard as [`MetricsRegistry::observe`].
    #[inline]
    pub fn observe_handle(&mut self, h: HistogramHandle, sample: f64) {
        if !sample.is_finite() {
            self.add(names::OBS_SAMPLES_DROPPED, 1);
            return;
        }
        let slot = &mut self.hist_slots[h.0];
        slot.hist.observe(sample);
        slot.touched = true;
    }

    /// Increments counter `name` by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increments counter `name` by `n`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        let i = self.counter_slot(name);
        let slot = &mut self.counter_slots[i];
        slot.value += n;
        slot.touched = true;
    }

    /// Sets counter `name` to an absolute value (for gauges sampled at
    /// export time, e.g. cache eviction totals owned by another struct).
    pub fn set(&mut self, name: &'static str, value: u64) {
        let i = self.counter_slot(name);
        let slot = &mut self.counter_slots[i];
        slot.value = value;
        slot.touched = true;
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counter_index.get(name).map(|&i| self.counter_slots[i].value).unwrap_or(0)
    }

    /// Records one sample into histogram `name`. Non-finite samples are
    /// dropped and counted under [`names::OBS_SAMPLES_DROPPED`], so a NaN
    /// can never poison percentile computation or the JSON export.
    pub fn observe(&mut self, name: &'static str, sample: f64) {
        if !sample.is_finite() {
            self.add(names::OBS_SAMPLES_DROPPED, 1);
            return;
        }
        let i = self.hist_slot(name);
        let slot = &mut self.hist_slots[i];
        slot.hist.observe(sample);
        slot.touched = true;
    }

    /// Raw samples of histogram `name` (empty slice if never touched).
    /// Streaming histograms keep no raw samples, so they also yield an
    /// empty slice — use [`MetricsRegistry::stats`] for mode-independent
    /// summaries.
    pub fn samples(&self, name: &str) -> &[f64] {
        match self.hist_index.get(name).map(|&i| &self.hist_slots[i].hist) {
            Some(Hist::Exact(v)) => v.as_slice(),
            _ => &[],
        }
    }

    /// Summary statistics of histogram `name`, in either mode. `None` if
    /// the histogram was never touched.
    pub fn stats(&self, name: &str) -> Option<HistogramStats> {
        self.hist_index.get(name).and_then(|&i| {
            let slot = &self.hist_slots[i];
            slot.touched.then(|| slot.hist.stats())
        })
    }

    /// Stored values for histogram `name`: raw sample count in exact
    /// mode, occupied bucket count in streaming mode. Zero if never
    /// touched. This is the quantity the streaming mode bounds.
    pub fn histogram_footprint(&self, name: &str) -> usize {
        self.hist_index.get(name).map(|&i| self.hist_slots[i].hist.footprint()).unwrap_or(0)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counter_index.iter().filter_map(|(k, &i)| {
            let slot = &self.counter_slots[i];
            slot.touched.then_some((*k, slot.value))
        })
    }

    /// Iterates counters whose name starts with `prefix`, in name order.
    /// Used by report renderers to pull out a subsystem's counter family
    /// (e.g. the `fault_*` counters the fault-injection layer emits:
    /// partitions started/healed, dials blocked or spiked by the oracle,
    /// connections severed, messages cut or lost, nodes crashed).
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'static str, u64)> + 'a {
        self.counters().filter(move |(k, _)| k.starts_with(prefix))
    }

    /// Iterates raw-sample histograms in name order. Streaming entries
    /// hold no raw samples and are skipped; use
    /// [`MetricsRegistry::histogram_stats`] for a mode-independent view.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &[f64])> + '_ {
        self.touched_hists().filter_map(|(k, hist)| match hist {
            Hist::Exact(s) => Some((k, s.as_slice())),
            Hist::Streaming(_) => None,
        })
    }

    /// Iterates every histogram's summary statistics in name order,
    /// regardless of mode.
    pub fn histogram_stats(&self) -> impl Iterator<Item = (&'static str, HistogramStats)> + '_ {
        self.touched_hists().map(|(k, hist)| (k, hist.stats()))
    }

    /// Name-ordered iteration over histograms with at least one sample.
    fn touched_hists(&self) -> impl Iterator<Item = (&'static str, &Hist)> + '_ {
        self.hist_index.iter().filter_map(|(k, &i)| {
            let slot = &self.hist_slots[i];
            slot.touched.then_some((*k, &slot.hist))
        })
    }

    /// Folds another registry into this one (counters add, samples
    /// append). When either side of a histogram is streaming, the merged
    /// entry is streaming — exact samples are re-observed into buckets so
    /// a merge never resurrects unbounded storage.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &oi) in &other.counter_index {
            let theirs = &other.counter_slots[oi];
            if theirs.touched {
                self.add(k, theirs.value);
            }
        }
        for (k, &oi) in &other.hist_index {
            let theirs = &other.hist_slots[oi];
            if !theirs.touched {
                continue;
            }
            let i = self.hist_slot(k);
            let slot = &mut self.hist_slots[i];
            if !slot.touched {
                // Never sampled here: adopt theirs wholesale (keeps their
                // storage mode, exactly like inserting into an empty map).
                slot.hist = theirs.hist.clone();
                slot.touched = true;
                continue;
            }
            match (&mut slot.hist, &theirs.hist) {
                (Hist::Exact(mine), Hist::Exact(t)) => mine.extend_from_slice(t),
                (Hist::Streaming(mine), Hist::Streaming(t)) => mine.merge(t),
                (Hist::Streaming(mine), Hist::Exact(t)) => {
                    for &s in t {
                        mine.observe(s);
                    }
                }
                (mine @ Hist::Exact(_), Hist::Streaming(t)) => {
                    let mut merged = t.clone();
                    if let Hist::Exact(samples) = mine {
                        for &s in samples.iter() {
                            merged.observe(s);
                        }
                    }
                    *mine = Hist::Streaming(merged);
                }
            }
        }
    }

    /// Serialises the registry as a JSON object:
    /// `{"counters": {..}, "histograms": {"name": {"n": .., "mean": ..,
    /// "p50": .., "p90": .., "p99": ..}}}`. Floats are JSON-safe: any
    /// non-finite value renders as `null` (none can arise from observed
    /// samples, which are guarded at intake).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, hist)) in self.touched_hists().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = hist.stats();
            out.push_str(&format!(
                "\"{k}\":{{\"n\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                s.n,
                fmt_json_f64(s.mean),
                fmt_json_f64(s.p50),
                fmt_json_f64(s.p90),
                fmt_json_f64(s.p99),
            ));
        }
        out.push_str("}}");
        out
    }

    /// Flattens counters into `(name, value)` CSV rows.
    pub fn to_csv_rows(&self) -> Vec<(String, u64)> {
        self.counters().map(|(k, v)| (k.to_string(), v)).collect()
    }
}

/// Formats a float for embedding in JSON: non-finite values (which JSON
/// cannot represent) render as `null`.
fn fmt_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Nearest-rank percentile over pre-sorted samples.
fn pct(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

/// Transport class of a failed dial, following the §6.1 latency split:
/// immediate connection-refused, the 5 s TCP/QUIC timeout, and the 45 s
/// WebSocket timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DialClass {
    /// Target port closed: failure reported almost immediately.
    FastRefuse,
    /// TCP / QUIC dial timeout (5 s).
    Timeout5s,
    /// WebSocket dial timeout (45 s).
    Websocket45s,
}

impl DialClass {
    /// Metric/trace label for the class.
    pub fn label(self) -> &'static str {
        match self {
            DialClass::FastRefuse => "fast_refuse",
            DialClass::Timeout5s => "timeout_5s",
            DialClass::Websocket45s => "timeout_45s",
        }
    }

    /// Counter name bumped when a dial fails with this class.
    pub fn metric(self) -> &'static str {
        match self {
            DialClass::FastRefuse => names::DIAL_FAILED_FAST_REFUSE,
            DialClass::Timeout5s => names::DIAL_FAILED_TIMEOUT_5S,
            DialClass::Websocket45s => names::DIAL_FAILED_TIMEOUT_45S,
        }
    }
}

/// One step of an operation's lifecycle, as observed by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// The operation was submitted ("publish", "retrieve", ...).
    OpStarted {
        /// Operation kind label.
        kind: &'static str,
    },
    /// The operation entered a pipeline phase ("bitswap_probe",
    /// "provider_walk", "peer_walk", "fetch", "walk", "rpc_batch").
    PhaseEntered {
        /// Phase label.
        phase: &'static str,
    },
    /// A DHT RPC left this node on behalf of the operation.
    RpcSent {
        /// Request type label ("FIND_NODE", "GET_PROVIDERS", ...).
        kind: &'static str,
        /// Destination node.
        peer: usize,
    },
    /// A DHT RPC response came back.
    RpcOk {
        /// Responding node.
        peer: usize,
    },
    /// A DHT RPC failed (unreachable peer / dial timeout).
    RpcFailed {
        /// Unreachable node.
        peer: usize,
    },
    /// A DHT walk converged; carries the walk's final statistics.
    QueryConverged {
        /// RPCs issued by the walk.
        rpcs: u64,
        /// Responses received.
        responses: u64,
        /// Failed RPCs.
        failures: u64,
        /// Deepest hop reached.
        hops: u32,
    },
    /// A dial to `peer` began.
    DialStarted {
        /// Dialed node.
        peer: usize,
    },
    /// A dial succeeded.
    DialOk {
        /// Dialed node.
        peer: usize,
        /// Whether an existing warm connection was reused.
        warm: bool,
    },
    /// A dial failed.
    DialFailed {
        /// Dialed node.
        peer: usize,
        /// Failure class (§6.1 timeout split).
        class: DialClass,
    },
    /// A previously started dial's connection came up — the exact end of
    /// the dial component in the §6.2 latency split (a warm reuse
    /// completes at the same instant it started).
    DialCompleted {
        /// Dialed node.
        peer: usize,
    },
    /// A timer guarding the operation was armed.
    TimerArmed {
        /// Timer label ("bitswap_probe", ...).
        timer: &'static str,
    },
    /// A timer guarding the operation fired.
    TimerFired {
        /// Timer label.
        timer: &'static str,
    },
    /// A Bitswap message left this node for the operation.
    BitswapSent {
        /// Message type label ("WANT_HAVE", "BLOCK", ...).
        kind: &'static str,
        /// Destination node.
        peer: usize,
    },
    /// A Bitswap message arrived for the operation.
    BitswapReceived {
        /// Message type label.
        kind: &'static str,
        /// Sending node.
        peer: usize,
    },
    /// A wanted block arrived and was stored.
    BlockReceived,
    /// The provider's address was already cached, skipping the peer walk
    /// (the multiaddress shortcut of §3.2).
    AddrBookHit,
    /// The operation finished.
    OpFinished {
        /// Whether it succeeded.
        success: bool,
    },
}

impl TraceEventKind {
    /// Snake-case label identifying the event variant.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEventKind::OpStarted { .. } => "op_started",
            TraceEventKind::PhaseEntered { .. } => "phase_entered",
            TraceEventKind::RpcSent { .. } => "rpc_sent",
            TraceEventKind::RpcOk { .. } => "rpc_ok",
            TraceEventKind::RpcFailed { .. } => "rpc_failed",
            TraceEventKind::QueryConverged { .. } => "query_converged",
            TraceEventKind::DialStarted { .. } => "dial_started",
            TraceEventKind::DialOk { .. } => "dial_ok",
            TraceEventKind::DialFailed { .. } => "dial_failed",
            TraceEventKind::DialCompleted { .. } => "dial_completed",
            TraceEventKind::TimerArmed { .. } => "timer_armed",
            TraceEventKind::TimerFired { .. } => "timer_fired",
            TraceEventKind::BitswapSent { .. } => "bitswap_sent",
            TraceEventKind::BitswapReceived { .. } => "bitswap_received",
            TraceEventKind::BlockReceived => "block_received",
            TraceEventKind::AddrBookHit => "addr_book_hit",
            TraceEventKind::OpFinished { .. } => "op_finished",
        }
    }

    /// Variant payload as JSON key/value pairs (without braces), empty for
    /// payload-free variants.
    fn json_fields(&self) -> String {
        match self {
            TraceEventKind::OpStarted { kind } => format!(",\"kind\":\"{kind}\""),
            TraceEventKind::PhaseEntered { phase } => format!(",\"phase\":\"{phase}\""),
            TraceEventKind::RpcSent { kind, peer } => {
                format!(",\"kind\":\"{kind}\",\"peer\":{peer}")
            }
            TraceEventKind::RpcOk { peer } | TraceEventKind::RpcFailed { peer } => {
                format!(",\"peer\":{peer}")
            }
            TraceEventKind::QueryConverged { rpcs, responses, failures, hops } => format!(
                ",\"rpcs\":{rpcs},\"responses\":{responses},\"failures\":{failures},\"hops\":{hops}"
            ),
            TraceEventKind::DialStarted { peer } | TraceEventKind::DialCompleted { peer } => {
                format!(",\"peer\":{peer}")
            }
            TraceEventKind::DialOk { peer, warm } => format!(",\"peer\":{peer},\"warm\":{warm}"),
            TraceEventKind::DialFailed { peer, class } => {
                format!(",\"peer\":{peer},\"class\":\"{}\"", class.label())
            }
            TraceEventKind::TimerArmed { timer } | TraceEventKind::TimerFired { timer } => {
                format!(",\"timer\":\"{timer}\"")
            }
            TraceEventKind::BitswapSent { kind, peer }
            | TraceEventKind::BitswapReceived { kind, peer } => {
                format!(",\"kind\":\"{kind}\",\"peer\":{peer}")
            }
            TraceEventKind::BlockReceived | TraceEventKind::AddrBookHit => String::new(),
            TraceEventKind::OpFinished { success } => format!(",\"success\":{success}"),
        }
    }
}

/// One timestamped trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated time the event occurred.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The accumulated trace of one operation.
#[derive(Debug, Clone, Default)]
pub struct OpTrace {
    /// Events in emission (and therefore time) order.
    pub events: Vec<TraceEvent>,
}

impl OpTrace {
    /// Labels of the `PhaseEntered` events, in order — the observed
    /// pipeline of the operation.
    pub fn phases(&self) -> Vec<&'static str> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::PhaseEntered { phase } => Some(phase),
                _ => None,
            })
            .collect()
    }

    /// Index of the first event matching `pred`, if any.
    pub fn position<F: Fn(&TraceEventKind) -> bool>(&self, pred: F) -> Option<usize> {
        self.events.iter().position(|e| pred(&e.kind))
    }

    /// Whether any event matches `pred`.
    pub fn contains<F: Fn(&TraceEventKind) -> bool>(&self, pred: F) -> bool {
        self.position(pred).is_some()
    }

    /// Serialises the trace as a JSON array of event objects, each with
    /// `t_us` (microseconds of simulated time), `event`, and the variant's
    /// payload fields.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"t_us\":{},\"event\":\"{}\"{}}}",
                ev.at.as_nanos() / 1_000,
                ev.kind.label(),
                ev.kind.json_fields()
            ));
        }
        out.push(']');
        out
    }
}

/// Switches for trace collection.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceConfig {
    /// Master switch: when false, [`Tracer::record_with`] returns after a
    /// single branch and never invokes its closure.
    pub enabled: bool,
}

impl TraceConfig {
    /// A config with tracing on.
    pub fn enabled() -> Self {
        TraceConfig { enabled: true }
    }
}

/// Collects [`OpTrace`]s for in-flight and completed operations.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    config: TraceConfig,
    traces: HashMap<OpId, OpTrace>,
}

impl Tracer {
    /// Creates a tracer with the given config.
    pub fn new(config: TraceConfig) -> Self {
        Tracer { config, traces: HashMap::new() }
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// Replaces the config (existing traces are kept).
    pub fn set_config(&mut self, config: TraceConfig) {
        self.config = config;
    }

    /// Records an event for `op` at time `at`. The closure that builds the
    /// event only runs when tracing is enabled, so the disabled path is a
    /// single branch with no allocation.
    #[inline]
    pub fn record_with<F: FnOnce() -> TraceEventKind>(&mut self, op: OpId, at: SimTime, f: F) {
        if !self.config.enabled {
            return;
        }
        self.traces.entry(op).or_default().events.push(TraceEvent { at, kind: f() });
    }

    /// The trace collected for `op`, if any.
    pub fn trace(&self, op: OpId) -> Option<&OpTrace> {
        self.traces.get(&op)
    }

    /// Removes and returns the trace collected for `op`.
    pub fn take(&mut self, op: OpId) -> Option<OpTrace> {
        self.traces.remove(&op)
    }

    /// All collected traces sorted by [`OpId`] — the deterministic order
    /// every bulk export must use (the backing store is a `HashMap`, so
    /// raw iteration order would depend on hashing).
    pub fn iter_sorted(&self) -> Vec<(OpId, &OpTrace)> {
        let mut all: Vec<(OpId, &OpTrace)> = self.traces.iter().map(|(k, v)| (*k, v)).collect();
        all.sort_by_key(|(id, _)| *id);
        all
    }

    /// Removes and returns every collected trace, sorted by [`OpId`].
    pub fn drain_sorted(&mut self) -> Vec<(OpId, OpTrace)> {
        let mut all: Vec<(OpId, OpTrace)> = self.traces.drain().collect();
        all.sort_by_key(|(id, _)| *id);
        all
    }

    /// Number of operations with collected traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether no traces have been collected.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Drops all collected traces.
    pub fn clear(&mut self) {
        self.traces.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDuration;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.get("dials_attempted"), 0);
        reg.incr("dials_attempted");
        reg.add("dials_attempted", 4);
        assert_eq!(reg.get("dials_attempted"), 5);
        reg.set("gauge", 42);
        reg.set("gauge", 17);
        assert_eq!(reg.get("gauge"), 17);
    }

    #[test]
    fn handle_and_name_paths_stay_in_lockstep() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter_handle(names::DIALS_ATTEMPTED);
        let h = reg.histogram_handle(names::DHT_WALK_RPCS);
        // Interleave handle- and string-keyed writes: both must hit the
        // same storage, observable through either read path.
        reg.incr_handle(c);
        reg.incr(names::DIALS_ATTEMPTED);
        reg.add_handle(c, 3);
        reg.add(names::DIALS_ATTEMPTED, 5);
        assert_eq!(reg.get(names::DIALS_ATTEMPTED), 10);
        reg.observe_handle(h, 4.0);
        reg.observe(names::DHT_WALK_RPCS, 8.0);
        assert_eq!(reg.samples(names::DHT_WALK_RPCS), &[4.0, 8.0]);
        // Re-resolving yields the same slot; exports see the merged view.
        assert_eq!(reg.counter_handle(names::DIALS_ATTEMPTED), c);
        assert_eq!(reg.histogram_handle(names::DHT_WALK_RPCS), h);
        let json = reg.to_json();
        assert!(json.contains("\"dials_attempted\":10"), "{json}");
        assert!(json.contains("\"dht_walk_rpcs\":{\"n\":2"), "{json}");
        // The non-finite guard applies on the handle path too.
        reg.observe_handle(h, f64::NAN);
        assert_eq!(reg.get(names::OBS_SAMPLES_DROPPED), 1);
        assert_eq!(reg.stats(names::DHT_WALK_RPCS).unwrap().n, 2);
    }

    #[test]
    fn handle_registration_alone_stays_out_of_exports() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter_handle("quiet_counter");
        let _h = reg.histogram_handle("quiet_hist");
        assert_eq!(reg.to_json(), "{\"counters\":{},\"histograms\":{}}");
        assert_eq!(reg.counters().count(), 0);
        assert_eq!(reg.histogram_stats().count(), 0);
        assert!(reg.to_csv_rows().is_empty());
        assert!(reg.stats("quiet_hist").is_none());
        // A merge of registered-but-untouched slots is also invisible.
        let mut into = MetricsRegistry::new();
        into.merge(&reg);
        assert_eq!(into.to_json(), "{\"counters\":{},\"histograms\":{}}");
        // First real touch surfaces it.
        reg.incr_handle(c);
        assert_eq!(reg.to_json(), "{\"counters\":{\"quiet_counter\":1},\"histograms\":{}}");
    }

    #[test]
    fn histograms_store_raw_samples() {
        let mut reg = MetricsRegistry::new();
        for i in 0..10 {
            reg.observe("walk_rpcs", i as f64);
        }
        assert_eq!(reg.samples("walk_rpcs").len(), 10);
        assert_eq!(reg.samples("missing"), &[] as &[f64]);
    }

    #[test]
    fn merge_adds_counters_and_appends_samples() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.add("x", 2);
        b.add("x", 3);
        b.incr("y");
        b.observe("h", 1.0);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
        assert_eq!(a.samples("h"), &[1.0]);
    }

    #[test]
    fn json_export_is_well_formed() {
        let mut reg = MetricsRegistry::new();
        reg.add("rpcs", 7);
        reg.observe("latency", 1.0);
        reg.observe("latency", 3.0);
        let json = reg.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rpcs\":7"));
        assert!(json.contains("\"n\":2"));
        assert!(json.contains("\"mean\":2"));
    }

    #[test]
    fn disabled_tracer_never_invokes_closure() {
        let mut tracer = Tracer::new(TraceConfig::default());
        let mut called = false;
        tracer.record_with(OpId(1), SimTime::ZERO, || {
            called = true;
            TraceEventKind::BlockReceived
        });
        assert!(!called, "closure must not run when tracing is disabled");
        assert!(tracer.is_empty(), "no trace storage allocated when disabled");
    }

    #[test]
    fn enabled_tracer_collects_in_order() {
        let mut tracer = Tracer::new(TraceConfig::enabled());
        let op = OpId(9);
        tracer.record_with(op, SimTime::ZERO, || TraceEventKind::OpStarted { kind: "retrieve" });
        tracer.record_with(op, SimTime::ZERO + SimDuration::from_secs(1), || {
            TraceEventKind::PhaseEntered { phase: "provider_walk" }
        });
        let trace = tracer.trace(op).unwrap();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.phases(), vec!["provider_walk"]);
        let taken = tracer.take(op).unwrap();
        assert_eq!(taken.events.len(), 2);
        assert!(tracer.trace(op).is_none());
    }

    #[test]
    fn json_export_handles_empty_and_single_sample() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.to_json(), "{\"counters\":{},\"histograms\":{}}");
        let mut reg = MetricsRegistry::new();
        reg.observe("h", 2.5);
        let json = reg.to_json();
        assert!(json.contains("\"h\":{\"n\":1,\"mean\":2.5,\"p50\":2.5,\"p90\":2.5,\"p99\":2.5}"));
        assert_eq!(reg.stats("h").unwrap().n, 1);
        assert!(reg.stats("missing").is_none());
    }

    #[test]
    fn non_finite_samples_are_dropped_and_counted() {
        let mut reg = MetricsRegistry::new();
        reg.observe("h", f64::NAN);
        reg.observe("h", f64::INFINITY);
        reg.observe("h", f64::NEG_INFINITY);
        reg.observe("h", 1.0);
        assert_eq!(reg.get(names::OBS_SAMPLES_DROPPED), 3);
        assert_eq!(reg.samples("h"), &[1.0]);
        let json = reg.to_json();
        assert!(!json.contains("NaN") && !json.contains("inf"), "JSON-safe: {json}");
        // Same guard in streaming mode.
        let mut s = MetricsRegistry::with_histogram_mode(HistogramMode::Streaming);
        s.observe("h", f64::NAN);
        assert_eq!(s.get(names::OBS_SAMPLES_DROPPED), 1);
        assert!(s.stats("h").is_none());
    }

    #[test]
    fn streaming_histogram_bounds_memory_and_percentile_error() {
        let mut exact = MetricsRegistry::new();
        let mut streaming = MetricsRegistry::with_histogram_mode(HistogramMode::Streaming);
        // 100k deterministic log-uniform-ish samples spanning 1e-3..1e3.
        let mut x = 0x2545F4914F6CDD1Du64;
        for _ in 0..100_000 {
            // xorshift64*
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let u = (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
            let v = 10f64.powf(u * 6.0 - 3.0);
            exact.observe("lat", v);
            streaming.observe("lat", v);
        }
        // Memory: O(buckets), not O(samples). The full 1e-3..1e3 span is
        // ~283 buckets at γ=1.05.
        assert_eq!(exact.histogram_footprint("lat"), 100_000);
        assert!(
            streaming.histogram_footprint("lat") <= 300,
            "streaming footprint must be bucket-bounded, got {}",
            streaming.histogram_footprint("lat")
        );
        // Percentile relative error bounded by the bucket width (≤ 2.5 %,
        // asserted with slack at 5 %); the mean is exact.
        let e = exact.stats("lat").unwrap();
        let s = streaming.stats("lat").unwrap();
        assert_eq!(e.n, s.n);
        assert!((e.mean - s.mean).abs() / e.mean < 1e-9, "mean is tracked exactly");
        for (truth, est, q) in [(e.p50, s.p50, "p50"), (e.p90, s.p90, "p90"), (e.p99, s.p99, "p99")]
        {
            let rel = (truth - est).abs() / truth;
            assert!(rel < 0.05, "{q}: exact={truth} streaming={est} rel_err={rel}");
        }
    }

    #[test]
    fn per_histogram_streaming_override_bounds_memory_and_error() {
        // The override targets hot-path histograms like
        // `bitswap_peer_latency_ms` in an otherwise-exact registry.
        let mut exact = MetricsRegistry::new();
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.histogram_mode(), HistogramMode::Exact);
        let h = reg.histogram_handle_streaming(names::BITSWAP_PEER_LATENCY_MS);
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..50_000 {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let u = (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
            // Plausible per-peer latency range: 1 ms .. 10 s.
            let v = 10f64.powf(u * 4.0);
            reg.observe_handle(h, v);
            exact.observe(names::BITSWAP_PEER_LATENCY_MS, v);
        }
        // Memory is bucket-bounded, not sample-bounded…
        assert!(
            reg.histogram_footprint(names::BITSWAP_PEER_LATENCY_MS) <= 250,
            "override must stream: footprint {}",
            reg.histogram_footprint(names::BITSWAP_PEER_LATENCY_MS)
        );
        assert_eq!(exact.histogram_footprint(names::BITSWAP_PEER_LATENCY_MS), 50_000);
        // …and percentiles stay within the γ-bucket error bound
        // (≤ ½·(γ−1) = 2.5 %, asserted with slack at 5 %).
        let e = exact.stats(names::BITSWAP_PEER_LATENCY_MS).unwrap();
        let s = reg.stats(names::BITSWAP_PEER_LATENCY_MS).unwrap();
        assert_eq!(e.n, s.n);
        for (truth, est, q) in [(e.p50, s.p50, "p50"), (e.p90, s.p90, "p90"), (e.p99, s.p99, "p99")]
        {
            let rel = (truth - est).abs() / truth;
            assert!(rel < 0.05, "{q}: exact={truth} streaming={est} rel_err={rel}");
        }
        // Converting after exact samples were recorded keeps every count.
        let mut late = MetricsRegistry::new();
        late.observe("h", 1.0);
        late.observe("h", 2.0);
        let lh = late.histogram_handle_streaming("h");
        late.observe_handle(lh, 3.0);
        assert_eq!(late.stats("h").unwrap().n, 3);
        assert_eq!(late.samples("h"), &[] as &[f64], "storage switched to streaming");
        // Idempotent under the registry-wide streaming mode.
        let mut wide = MetricsRegistry::with_histogram_mode(HistogramMode::Streaming);
        wide.observe("h", 1.0);
        let _ = wide.histogram_handle_streaming("h");
        assert_eq!(wide.stats("h").unwrap().n, 1);
    }

    #[test]
    fn streaming_histograms_report_no_raw_samples() {
        let mut reg = MetricsRegistry::with_histogram_mode(HistogramMode::Streaming);
        reg.observe("h", 3.0);
        assert_eq!(reg.samples("h"), &[] as &[f64]);
        assert_eq!(reg.histograms().count(), 0, "raw-sample iteration skips streaming entries");
        assert_eq!(reg.histogram_stats().count(), 1);
        let s = reg.stats("h").unwrap();
        assert_eq!(s.n, 1);
        // A single sample is pinned by the min/max clamp.
        assert_eq!(s.p50, 3.0);
    }

    #[test]
    fn merge_handles_mixed_histogram_modes() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let mut exact = MetricsRegistry::new();
        let mut streaming = MetricsRegistry::with_histogram_mode(HistogramMode::Streaming);
        for &v in &samples {
            exact.observe("h", v);
            streaming.observe("h", v);
        }
        // Streaming absorbs exact…
        let mut a = streaming.clone();
        a.merge(&exact);
        assert_eq!(a.stats("h").unwrap().n, 200);
        assert!(a.histogram_footprint("h") < 200);
        // …and an exact registry merging a streaming one converts.
        let mut b = exact.clone();
        b.merge(&streaming);
        assert_eq!(b.stats("h").unwrap().n, 200);
        assert!(b.histogram_footprint("h") < 200, "merge must not resurrect raw storage");
        let p50 = b.stats("h").unwrap().p50;
        assert!((p50 - 50.0).abs() / 50.0 < 0.05, "merged percentiles stay bounded: {p50}");
    }

    #[test]
    fn tracer_drain_is_sorted_by_op_id() {
        let mut tracer = Tracer::new(TraceConfig::enabled());
        for id in [9u64, 2, 151, 40, 1] {
            tracer.record_with(OpId(id), SimTime::ZERO, || TraceEventKind::BlockReceived);
        }
        let ids: Vec<u64> = tracer.iter_sorted().iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 2, 9, 40, 151]);
        let drained = tracer.drain_sorted();
        assert_eq!(drained.len(), 5);
        assert!(drained.windows(2).all(|w| w[0].0 < w[1].0), "drain sorted by OpId");
        assert!(tracer.is_empty());
    }

    #[test]
    fn trace_json_includes_timestamps_and_payload() {
        let mut tracer = Tracer::new(TraceConfig::enabled());
        let op = OpId(3);
        tracer.record_with(op, SimTime::ZERO + SimDuration::from_millis(1500), || {
            TraceEventKind::DialFailed { peer: 12, class: DialClass::Timeout5s }
        });
        let json = tracer.trace(op).unwrap().to_json();
        assert_eq!(
            json,
            "[{\"t_us\":1500000,\"event\":\"dial_failed\",\"peer\":12,\"class\":\"timeout_5s\"}]"
        );
    }
}
