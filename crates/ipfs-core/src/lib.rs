//! The IPFS node and network: the paper's primary contribution, assembled.
//!
//! This crate composes the substrates — `multiformats`, `merkledag`,
//! `kademlia`, `bitswap`, `simnet` — into complete IPFS nodes and a
//! simulated network of them, implementing the publication and retrieval
//! pipelines of §3 of *Design and Evaluation of IPFS* (SIGCOMM '22):
//!
//! **Publication** (Figure 3, steps 1–3): import content → allocate CID →
//! DHT walk to the 20 closest peers → fire-and-forget ADD_PROVIDER batch.
//!
//! **Retrieval** (Figure 3, steps 4–6): opportunistic Bitswap broadcast
//! with a 1 s timeout → DHT walk for the provider record → second DHT walk
//! for the peer record (unless the 900-entry address book short-circuits
//! it) → dial the provider → Bitswap content exchange → per-block hash
//! verification.
//!
//! Modules:
//! - [`config`] — protocol constants, every one traceable to the paper.
//! - [`addrbook`] — the 900-entry recently-seen address book (§3.2).
//! - [`conn`] — arena-backed warm-connection sets with intrusive LRU
//!   order (the per-node connection state of the simulation).
//! - [`ipns`] — mutable naming: signed, sequenced pointer records (§3.3).
//! - [`autonat`] — the dial-back protocol that splits clients from servers
//!   (§2.3).
//! - [`node`] — one IPFS node: identity + DHT + Bitswap + blockstore.
//! - [`netsim`] — the network simulation driver: delivers RPCs with
//!   geo latency, models dial timeouts, churn, and connection state.
//! - [`ops`] — the publish/retrieve operation state machines and their
//!   phase-by-phase timing reports (the data behind Figures 9 and 10).
//! - [`pinning`] — pinning services: third-party hosts that publish on
//!   behalf of NAT'ed users (§3.1).
//! - [`experiment`] — the six-vantage-point DHT performance experiment of
//!   §4.3 (Table 1, Table 4, Figures 9–10).
//! - [`obs`] — observability: the metrics registry and per-operation
//!   trace layer threaded through the simulation.
//! - [`shardsim`] — the scale substrate: a struct-of-arrays IPFS cell on
//!   the region-sharded deterministic PDES engine (100k+-node worlds).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod addrbook;
pub mod autonat;
pub mod config;
pub mod conn;
pub mod experiment;
pub mod ipns;
pub mod netsim;
pub mod node;
pub mod obs;
pub mod ops;
pub mod pinning;
pub mod shardsim;

pub use addrbook::AddressBook;
pub use autonat::{AutonatState, AutonatVerdict};
pub use config::NodeConfig;
pub use conn::ConnSet;
pub use experiment::{DhtPerfConfig, DhtPerfExperiment, DhtPerfResults};
pub use ipns::{IpnsRecord, IpnsStore};
pub use netsim::{IpfsNetwork, NetworkConfig, NodeId};
pub use node::IpfsNode;
pub use obs::span::{CriticalHop, LatencyBreakdown, Span, SpanTree};
pub use obs::timeseries::TimeSeries;
pub use obs::{
    DialClass, HistogramMode, HistogramStats, MetricsRegistry, OpTrace, StreamingHistogram,
    TraceConfig, TraceEvent, TraceEventKind, Tracer,
};
pub use ops::{OpId, PublishReport, RetrieveReport};
pub use pinning::{PinReceipt, PinningService};
pub use shardsim::{ShardSim, ShardSimConfig, ShardSimResult};
