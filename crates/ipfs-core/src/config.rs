//! Protocol constants. Every value is traceable to the paper (section cited
//! inline) or to the go-ipfs v0.10.0 behaviour the paper measured.

use simnet::SimDuration;

/// Node-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// Replication factor: provider records go to the k closest peers
    /// (§3.1, k = 20).
    pub replication: usize,
    /// Lookup concurrency α (§3.2, α = 3).
    pub alpha: usize,
    /// Opportunistic-Bitswap timeout before falling back to the DHT
    /// (§3.2: "content discovery falls back to the DHT with a timeout of
    /// 1 second").
    pub bitswap_timeout: SimDuration,
    /// Address-book capacity (§3.2: "an address book of up to 900 recently
    /// seen peers").
    pub addrbook_capacity: usize,
    /// Provider-record republish interval (§3.1: 12 h).
    pub republish_interval: SimDuration,
    /// Provider-record expiry interval (§3.1: 24 h).
    pub expiry_interval: SimDuration,
    /// Default object chunk size (§2.1: 256 kB).
    pub chunk_size: usize,
    /// Per-RPC response timeout (go-ipfs dial+read deadline; bounds how
    /// long a walk waits on a silent peer).
    pub rpc_timeout: SimDuration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            replication: 20,
            alpha: 3,
            bitswap_timeout: SimDuration::from_secs(1),
            addrbook_capacity: 900,
            republish_interval: SimDuration::from_hours(12),
            expiry_interval: SimDuration::from_hours(24),
            chunk_size: 256 * 1024,
            rpc_timeout: SimDuration::from_secs(10),
        }
    }
}

/// Transport-level timeout model. §6.1 attributes the spikes in the
/// RPC-batch CDF (Figure 9c) to these: "the spike at 5 s is caused by dial
/// timeouts on the transport level of the TCP and QUIC implementations,
/// whereas the spike at 45 s is caused by the handshake timeout of the
/// Websocket transport".
#[derive(Debug, Clone, Copy)]
pub struct TimeoutModel {
    /// TCP/QUIC dial timeout (5 s).
    pub dial_timeout: SimDuration,
    /// WebSocket handshake timeout (45 s).
    pub websocket_timeout: SimDuration,
    /// Probability that a failed dial burns the WebSocket path (and its
    /// 45 s timeout) rather than the 5 s TCP/QUIC timeout.
    pub websocket_share: f64,
    /// Probability that a failed dial errors fast (connection refused)
    /// instead of timing out.
    pub fast_refuse_share: f64,
    /// Latency of a fast connection-refused error.
    pub fast_refuse_delay: SimDuration,
}

impl Default for TimeoutModel {
    fn default() -> Self {
        TimeoutModel {
            dial_timeout: SimDuration::from_secs(5),
            websocket_timeout: SimDuration::from_secs(45),
            websocket_share: 0.09,
            fast_refuse_share: 0.35,
            fast_refuse_delay: SimDuration::from_millis(300),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = NodeConfig::default();
        assert_eq!(c.replication, 20);
        assert_eq!(c.alpha, 3);
        assert_eq!(c.bitswap_timeout, SimDuration::from_secs(1));
        assert_eq!(c.addrbook_capacity, 900);
        assert_eq!(c.republish_interval, SimDuration::from_hours(12));
        assert_eq!(c.expiry_interval, SimDuration::from_hours(24));
        assert_eq!(c.chunk_size, 262_144);
    }

    #[test]
    fn timeout_model_matches_paper_spikes() {
        let t = TimeoutModel::default();
        assert_eq!(t.dial_timeout, SimDuration::from_secs(5));
        assert_eq!(t.websocket_timeout, SimDuration::from_secs(45));
        assert!(t.websocket_share + t.fast_refuse_share < 1.0);
    }
}
