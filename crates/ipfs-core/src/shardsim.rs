//! The sharded cell: a struct-of-arrays IPFS workload on the PDES engine.
//!
//! [`crate::netsim`] models every protocol detail of §3 — at ~8 µs per
//! event, which caps a cell near 20k nodes. This module is the scale
//! substrate: the same IPFS shape (α=3 iterative DHT walks, provider
//! records, the recently-seen address book, warm-connection dialing,
//! churn, regional partitions) compressed into flat arrays over `u64`
//! keys and `u32` node ids, dispatched by the region-sharded
//! deterministic engine ([`simnet::ShardedEngine`]). A node costs a few
//! hundred bytes, so 100k+-node worlds fit comfortably in RAM, and the
//! per-event handler is allocation-free on the hot path.
//!
//! **Layout.** Nodes are renumbered region-major at build time: region
//! `r` owns the contiguous id range `[start[r], start[r+1])`, so a
//! shard's state is a set of dense per-region arrays (`online`, warm-conn
//! rings, address rings) indexed by `node - start[r]`. Routing tables are
//! one flat arena of `ROUTE_PER_NODE` u32 slots per node — 20 XOR-nearest
//! DHT servers (found through a numeric-sort window, the standard
//! sorted-oracle approximation) plus 60 random servers, which gives
//! iterative walks the Kademlia-like convergence the workload needs.
//!
//! **Determinism.** Every guarantee of [`simnet::shard`] is preserved:
//! all mutable state is per-region and only touched by events delivered
//! in that region; request ids are `(slot, gen)` pairs allocated in
//! region-event order; randomness comes from the per-event
//! [`ShardCtx::rng`]; cross-region delays are sampled with
//! [`simnet::latency::LatencyModel::sample_one_way_floored`], whose floor
//! is exactly the engine lookahead. Partitions from a
//! [`faultsim::FaultPlan`] are precompiled into read-only time windows
//! checked at the *exact* event instant, so a boundary landing mid-window
//! changes nothing across shard counts. The result's order/metrics
//! fingerprints are therefore byte-identical for any `shards` in 1..=10.

use crate::obs::dtrace::{fragment_span, FlightRing, SpanFragment, NO_PEER};
use faultsim::{FaultEvent, FaultPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::latency::{LatencyModel, Region};
use simnet::{LeanPopulation, RegionEvent, ShardCtx, ShardedEngine, SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// Concurrent queries per DHT walk (§3.1: libp2p's α).
const ALPHA: u32 = 3;
/// Best-candidate window a walk keeps sorted by XOR distance.
const CAND: usize = 8;
/// Closer peers returned per lookup reply.
const REPLY_MAX: usize = 4;
/// Queried-peer memory per walk (also the walk's RPC budget).
const MAX_RPCS: usize = 16;
/// Closest-done peers kept: the provider-record replica set.
const REPLICAS: usize = 4;
/// Warm-connection ring slots per node.
const CONN_SLOTS: usize = 8;
/// Address-book ring slots per node (the lean stand-in for the
/// 900-entry book: the handful of providers this node met recently).
const ADDR_SLOTS: usize = 8;
/// Routing-arena slots per node: 20 XOR-near + 60 random servers.
const ROUTE_NEAR: usize = 20;
const ROUTE_PER_NODE: usize = 80;
/// Numeric-sort window radius used to find XOR-near servers at build.
const NEAR_WINDOW: usize = 64;
/// Walker-side RPC timeout.
const RPC_TIMEOUT: SimDuration = SimDuration::from_secs(3);
/// Empty slot sentinel in the u32 arenas.
const NONE32: u32 = u32::MAX;
/// Flight-recorder ring capacity per region (walk-completion fragments).
const FLIGHT_CAP: usize = 64;

/// FNV-1a offset basis / prime (64-bit).
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one u64 into an FNV-1a chain, byte by byte.
fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64 finalizer: the key/cid derivation mix.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Content key of the `i`-th op of region `region`'s tick `round` —
/// derivable by any retriever without shared mutable state.
fn cid_of(seed: u64, region: usize, round: u64, i: u32) -> u64 {
    splitmix64(seed ^ 0x6369_6400 ^ ((region as u64) << 48) ^ (round << 16) ^ i as u64)
}

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

/// Metric counters, sum-merged across shards at collection.
#[derive(Clone, Copy)]
#[repr(usize)]
enum Ctr {
    Ticks,
    PublishStart,
    PublishDone,
    RetrieveStart,
    RetrieveDone,
    RetrieveMiss,
    RpcSent,
    RpcReply,
    RpcOffline,
    RpcBlocked,
    RpcTimeout,
    ProviderStore,
    AddrHit,
    AddrMiss,
    DialWarm,
    DialCold,
    ChurnOff,
    ChurnOn,
    ProviderExpired,
    SweepRepublish,
    SweepDeferred,
    PublishNanos,
    RetrieveNanos,
}

const CTR_COUNT: usize = 23;
const CTR_NAMES: [&str; CTR_COUNT] = [
    "ticks",
    "publish_start",
    "publish_done",
    "retrieve_start",
    "retrieve_done",
    "retrieve_miss",
    "rpc_sent",
    "rpc_reply",
    "rpc_offline",
    "rpc_blocked",
    "rpc_timeout",
    "provider_store",
    "addr_hit",
    "addr_miss",
    "dial_warm",
    "dial_cold",
    "churn_off",
    "churn_on",
    "provider_expired",
    "sweep_republish",
    "sweep_deferred",
    "publish_nanos",
    "retrieve_nanos",
];

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// RPC kinds threaded through [`Ev::Rpc`]/[`Ev::Reply`].
const KIND_LOOKUP: u8 = 0;
const KIND_GETPROV: u8 = 1;
const KIND_FETCH: u8 = 2;

/// Events of the sharded cell. Every variant carries its delivery
/// region, so the engine can route it without touching world state.
#[derive(Clone, Debug)]
enum Ev {
    /// Per-region workload pulse: churn toggles + new publish/retrieve
    /// ops at random nodes of the region. Self-rescheduling.
    Tick { region: u8 },
    /// A request arrives at `to` (kind: lookup / get-providers / fetch).
    Rpc {
        region: u8,
        kind: u8,
        to: u32,
        walker: u32,
        wregion: u8,
        slot: u32,
        gen: u32,
        rpc_no: u8,
        target: u64,
    },
    /// A response arrives back at the walker (identified by its walk
    /// slot — slots are region-scoped, and `region` is the walker's).
    Reply {
        region: u8,
        kind: u8,
        slot: u32,
        gen: u32,
        rpc_no: u8,
        from: u32,
        found: [u32; REPLY_MAX],
    },
    /// Walker-side RPC timer (scheduled at every send; loser of the
    /// reply/timeout race is ignored via the walk's open-RPC bitmask).
    Timeout { region: u8, slot: u32, gen: u32, rpc_no: u8 },
    /// Fire-and-forget ADD_PROVIDER landing at a replica (§3.1).
    Store { region: u8, to: u32, cid: u64, provider: u32 },
}

// Same bound as `netsim::NetEvent`: shard-boundary messages are copied
// through timing-wheel slots *and* window mailboxes, so inline size is
// paid on every schedule, cascade, pop, and cross-shard hand-off.
const _: () = assert!(std::mem::size_of::<Ev>() <= 80);

impl RegionEvent for Ev {
    fn region(&self) -> usize {
        match self {
            Ev::Tick { region }
            | Ev::Rpc { region, .. }
            | Ev::Reply { region, .. }
            | Ev::Timeout { region, .. }
            | Ev::Store { region, .. } => *region as usize,
        }
    }
}

// ---------------------------------------------------------------------
// World (read-only after build)
// ---------------------------------------------------------------------

/// Immutable world data shared by every shard.
struct World {
    seed: u64,
    latency: LatencyModel,
    tick: SimDuration,
    ops_per_tick: u32,
    /// Churn toggles per region per tick, precomputed from `churn_prob`.
    churn_toggles: [u32; Region::COUNT],
    /// Region-major id ranges: region `r` owns `start[r]..start[r+1]`.
    start: [u32; Region::COUNT + 1],
    /// Regions with at least one node (tick targets, retrieve domains).
    active_regions: Vec<u8>,
    /// DHT key per node.
    keys: Vec<u64>,
    /// Whether the node is a dialable DHT server (non-NAT'ed).
    server: Vec<bool>,
    /// Flat routing arena, `ROUTE_PER_NODE` slots per node, NONE-padded.
    routing: Vec<u32>,
    /// Partition windows `(start_nanos, end_nanos, region bitmask)`
    /// compiled from the fault plan; checked at exact event instants.
    partitions: Vec<(u64, u64, u16)>,
    /// Provider-record lifetime (scaled §3.1 24 h expiry).
    provider_expiry: SimDuration,
    /// Reprovide interval (scaled §3.1 12 h republish cycle).
    provider_republish: SimDuration,
}

impl World {
    fn region_of(&self, node: u32) -> usize {
        // 10 regions: a linear scan beats binary search and stays simple.
        let mut r = 0;
        while self.start[r + 1] <= node {
            r += 1;
        }
        r
    }

    /// Whether a message between regions `a` and `b` is cut at `at`:
    /// some active partition window separates them (exactly one side in
    /// the severed group). Intra-group and intra-region traffic passes.
    fn blocked(&self, at: SimTime, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        let t = at.as_nanos();
        self.partitions
            .iter()
            .any(|&(s, e, mask)| t >= s && t < e && ((mask >> a) ^ (mask >> b)) & 1 == 1)
    }

    /// Logical bytes of the read-only per-node arrays.
    fn static_bytes(&self) -> u64 {
        (self.keys.len() * std::mem::size_of::<u64>()
            + self.server.len()
            + self.routing.len() * std::mem::size_of::<u32>()) as u64
    }
}

// ---------------------------------------------------------------------
// Mutable per-region state
// ---------------------------------------------------------------------

/// One in-flight walk (lookup → get-providers → fetch state machine).
#[derive(Clone)]
struct Walk {
    gen: u32,
    node: u32,
    target: u64,
    t0: SimTime,
    /// Shard-invariant trace key ([`ShardCtx::trace_key`] of the event
    /// that started the walk) — the walk's flight-recorder trace id.
    tkey: u64,
    /// `true` = publish (stop after the lookup + provider stores).
    publish: bool,
    /// 0 lookup, 1 get-providers, 2 fetch.
    phase: u8,
    /// Next RPC number; doubles as the RPC budget spent. Lookups stop at
    /// `MAX_RPCS`; the get-providers and fetch phases may add two more,
    /// so the mask below must hold `MAX_RPCS + 2` bits.
    rpc_no: u8,
    /// Bitmask of in-flight RPC numbers (reply/timeout race arbiter).
    open: u32,
    /// Successful lookup replies received.
    done: u8,
    /// Closest XOR distance among replied peers.
    best_done: u64,
    /// Unqueried candidates, ascending XOR distance.
    cand: [(u64, u32); CAND],
    cand_len: u8,
    /// Closest replied peers: the replica set / fetch targets.
    closest: [(u64, u32); REPLICAS],
    closest_len: u8,
    /// Peers already queried (dedup for candidate insertion).
    seen: [u32; MAX_RPCS],
    seen_len: u8,
}

/// Dense mutable state of one region (only ever touched by events
/// delivered in this region).
struct RegionState {
    start: u32,
    count: u32,
    online: Vec<bool>,
    /// Warm-connection rings, `CONN_SLOTS` per node.
    conn: Vec<u32>,
    conn_cur: Vec<u8>,
    /// Recently-met-provider rings, `ADDR_SLOTS` per node.
    addr: Vec<u32>,
    addr_cur: Vec<u8>,
    /// Provider records stored at this region's replicas, keyed by
    /// `(replica node, cid)` — a record is only found by asking the node
    /// it was stored at, as on the real DHT. Value: `(provider,
    /// stored_at)`; the timestamp drives lazy expiry validation.
    providers: HashMap<(u32, u64), (u32, SimTime)>,
    /// Record-expiry queue `(deadline, replica, cid)`, appended at store
    /// dispatch so deadlines are nondecreasing — the VecDeque is the
    /// lean stand-in for the netsim store's per-shard timing wheels:
    /// each tick pops only the due prefix, O(expired) not O(records).
    /// A refreshed record is detected lazily (live `stored_at` newer
    /// than the popped deadline implies) and skipped.
    expiry: VecDeque<(SimTime, u32, u64)>,
    /// Reprovide queue `(deadline, publisher, cid)`: the region's
    /// keyspace-sweep equivalent. Every completed publish arms one
    /// entry; each tick pops the due prefix and re-walks (publisher
    /// online) or defers a full interval (publisher offline) —
    /// §3.1's 12 h republish cycle at the cell's scaled interval.
    reprovide: VecDeque<(SimTime, u32, u64)>,
    /// Walk slab; slots are recycled, `gen` guards stale events.
    walks: Vec<Walk>,
    free_walks: Vec<u32>,
    /// FNV-1a chain over this region's dispatch order `(at, key)`.
    order_fnv: u64,
    /// Flight recorder: the last [`FLIGHT_CAP`] walk-completion span
    /// fragments dispatched in this region. Fixed capacity, `Copy`
    /// payloads, shard-invariant ids — recording never allocates in
    /// steady state and never perturbs event order.
    flight: FlightRing,
    /// Tick rounds completed.
    round: u64,
}

impl RegionState {
    fn new(start: u32, count: u32) -> RegionState {
        let n = count as usize;
        RegionState {
            start,
            count,
            online: vec![true; n],
            conn: vec![NONE32; n * CONN_SLOTS],
            conn_cur: vec![0; n],
            addr: vec![NONE32; n * ADDR_SLOTS],
            addr_cur: vec![0; n],
            providers: HashMap::new(),
            expiry: VecDeque::new(),
            reprovide: VecDeque::new(),
            walks: Vec::new(),
            free_walks: Vec::new(),
            order_fnv: FNV_BASIS,
            flight: FlightRing::default(),
            round: 0,
        }
    }

    /// Records one walk-completion fragment into the flight ring. Every
    /// completion dispatches in the walk's home region, so the record
    /// order (and thus the ring contents) is identical at any shard
    /// count.
    #[allow(clippy::too_many_arguments)]
    fn record_flight(
        &mut self,
        tkey: u64,
        node: u32,
        peer: u32,
        detail: &'static str,
        rpcs: u8,
        t0: SimTime,
        at: SimTime,
    ) {
        let seq = self.flight.take_seq();
        self.flight.push(
            FLIGHT_CAP,
            SpanFragment {
                trace_id: tkey,
                span_id: fragment_span(tkey, node as usize, seq),
                parent: tkey,
                node,
                peer,
                label: "walk",
                detail,
                a: at.since(t0).as_nanos(),
                b: rpcs as u64,
                start: t0,
                end: at,
                seq,
            },
        );
    }

    /// Whether `peer` is in node `local`'s ring (warm conn or addr book).
    fn ring_contains(ring: &[u32], local: usize, slots: usize, peer: u32) -> bool {
        ring[local * slots..(local + 1) * slots].contains(&peer)
    }

    /// Round-robin overwrite insert into a ring; no-op if present.
    fn ring_insert(ring: &mut [u32], cur: &mut [u8], local: usize, slots: usize, peer: u32) {
        if Self::ring_contains(ring, local, slots, peer) {
            return;
        }
        let c = cur[local] as usize;
        ring[local * slots + c] = peer;
        cur[local] = ((c + 1) % slots) as u8;
    }

    /// Logical bytes of this region's mutable arrays.
    fn bytes(&self) -> u64 {
        (self.online.len()
            + self.conn.len() * 4
            + self.conn_cur.len()
            + self.addr.len() * 4
            + self.addr_cur.len()
            + self.providers.len() * std::mem::size_of::<((u32, u64), (u32, SimTime))>()
            + (self.expiry.len() + self.reprovide.len())
                * std::mem::size_of::<(SimTime, u32, u64)>()
            + self.walks.len() * std::mem::size_of::<Walk>()) as u64
    }
}

/// Per-shard handler state: the owned regions plus metric counters.
struct ShardState {
    regions: Vec<Option<RegionState>>,
    counters: [u64; CTR_COUNT],
}

// ---------------------------------------------------------------------
// Config / result
// ---------------------------------------------------------------------

/// Parameters of a sharded cell run.
#[derive(Clone, Debug)]
pub struct ShardSimConfig {
    /// World size (nodes across all regions).
    pub nodes: usize,
    /// Region shards (1 = exact serial path). Clamped to `1..=10` by
    /// [`ShardSim::build`].
    pub shards: usize,
    /// Worker-thread override (`None` = `min(shards, cores)`). Never
    /// affects results.
    pub workers: Option<usize>,
    /// Master seed.
    pub seed: u64,
    /// Virtual run length.
    pub duration: SimDuration,
    /// Workload pulse interval per region.
    pub tick: SimDuration,
    /// Publish/retrieve ops started per region per tick.
    pub ops_per_tick: u32,
    /// Per-tick probability that any given node toggles on/offline.
    pub churn_prob: f64,
    /// Fraction of nodes behind NATs (non-servers), §4.1's 45.5 %.
    pub nat_fraction: f64,
    /// Provider-record lifetime — §3.1's 24 h expiry scaled to the
    /// cell's seconds-long runs. Records older than this drop at the
    /// replica's next tick (O(expired) queue pop).
    pub provider_expiry: SimDuration,
    /// Republish interval — §3.1's 12 h cycle, same scaling. Every
    /// completed publish arms a reprovide entry that re-walks here.
    pub provider_republish: SimDuration,
    /// Scripted faults (partition windows are honored; other fault
    /// kinds are netsim-only and ignored here).
    pub faults: FaultPlan,
}

impl Default for ShardSimConfig {
    fn default() -> Self {
        ShardSimConfig {
            nodes: 10_000,
            shards: 1,
            workers: None,
            seed: 2022,
            duration: SimDuration::from_secs(60),
            tick: SimDuration::from_millis(200),
            ops_per_tick: 8,
            churn_prob: 0.0005,
            nat_fraction: 0.455,
            provider_expiry: SimDuration::from_secs(30),
            provider_republish: SimDuration::from_secs(12),
            faults: FaultPlan::new(),
        }
    }
}

/// What a sharded cell run produced. Identical for every shard count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSimResult {
    /// Total events dispatched.
    pub events: u64,
    /// Named metric counters, sum-merged across shards.
    pub counters: Vec<(&'static str, u64)>,
    /// FNV-1a fingerprint of the counters (the metrics digest).
    pub metrics_fnv: u64,
    /// FNV-1a fingerprint of the per-region dispatch orders `(at, key)`,
    /// combined in region order — byte-equal iff the serial total order
    /// was reproduced exactly.
    pub order_fnv: u64,
    /// FNV-1a fingerprint of every region's flight-recorder ring
    /// (trace ids, span ids, peers, detail words, timestamps), combined
    /// in region order — byte-equal iff the crash flight recorder
    /// captured the identical causal trail at every shard count.
    pub flight_fnv: u64,
    /// Mean logical bytes of per-node state (arenas + rings + slabs).
    pub bytes_per_node: u64,
}

impl ShardSimResult {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v)
    }
}

// ---------------------------------------------------------------------
// The cell
// ---------------------------------------------------------------------

/// A built sharded cell, ready to run. Construction (world generation,
/// routing arenas) is separated from [`ShardSim::run`] so benchmarks can
/// time pure event dispatch.
pub struct ShardSim {
    world: World,
    engine: ShardedEngine<Ev>,
    states: Vec<ShardState>,
    deadline: SimTime,
}

impl ShardSim {
    /// Builds the world: region-major renumbered population, key space,
    /// routing arenas, partition windows, and the seeded region ticks.
    pub fn build(cfg: &ShardSimConfig) -> ShardSim {
        assert!(cfg.nodes >= 2, "cell needs at least two nodes");
        let shards = cfg.shards.clamp(1, Region::COUNT);
        let pop = LeanPopulation::generate(cfg.nodes, cfg.nat_fraction, cfg.seed);

        // Region-major renumbering: count, prefix-sum, then stable-place
        // every original index into its region's range.
        let mut counts = [0u32; Region::COUNT];
        for &r in &pop.region {
            counts[r as usize] += 1;
        }
        let mut start = [0u32; Region::COUNT + 1];
        for r in 0..Region::COUNT {
            start[r + 1] = start[r] + counts[r];
        }
        let mut cursor = start;
        let n = cfg.nodes;
        let mut keys = vec![0u64; n];
        let mut server = vec![false; n];
        for orig in 0..n {
            let r = pop.region[orig] as usize;
            let new = cursor[r];
            cursor[r] += 1;
            keys[new as usize] = splitmix64(cfg.seed ^ 0x6b65_7900 ^ new as u64);
            server[new as usize] = pop.server[orig];
        }

        // Servers sorted by key: the numeric oracle the routing build
        // windows over to find XOR-near entries.
        let mut by_key: Vec<u32> = (0..n as u32).filter(|&i| server[i as usize]).collect();
        by_key.sort_unstable_by_key(|&i| keys[i as usize]);
        assert!(by_key.len() >= ROUTE_NEAR, "too few DHT servers for routing tables");

        let mut routing = vec![NONE32; n * ROUTE_PER_NODE];
        let mut near: Vec<(u64, u32)> = Vec::with_capacity(2 * NEAR_WINDOW);
        for i in 0..n as u32 {
            let key = keys[i as usize];
            let pos = by_key.partition_point(|&s| keys[s as usize] < key);
            let lo = pos.saturating_sub(NEAR_WINDOW);
            let hi = (pos + NEAR_WINDOW).min(by_key.len());
            near.clear();
            near.extend(
                by_key[lo..hi].iter().filter(|&&s| s != i).map(|&s| (keys[s as usize] ^ key, s)),
            );
            near.sort_unstable();
            let row = &mut routing[i as usize * ROUTE_PER_NODE..(i as usize + 1) * ROUTE_PER_NODE];
            for (slot, &(_, s)) in near.iter().take(ROUTE_NEAR).enumerate() {
                row[slot] = s;
            }
            let mut rng = StdRng::seed_from_u64(splitmix64(cfg.seed ^ 0x726f_7500 ^ i as u64));
            for slot in row.iter_mut().take(ROUTE_PER_NODE).skip(ROUTE_NEAR) {
                let s = by_key[rng.random_range(0..by_key.len())];
                if s != i {
                    *slot = s;
                }
            }
        }

        // Compile partition windows; other fault kinds are out of scope
        // for the lean cell.
        let mut open: HashMap<u32, (u64, u16)> = HashMap::new();
        let mut partitions = Vec::new();
        for (at, ev) in cfg.faults.clone().into_timeline() {
            match ev {
                FaultEvent::PartitionStart { id, regions } => {
                    let mask = regions.iter().fold(0u16, |m, r| m | 1 << r.index());
                    open.insert(id, (at.as_nanos(), mask));
                }
                FaultEvent::PartitionEnd { id } => {
                    if let Some((s, mask)) = open.remove(&id) {
                        partitions.push((s, at.as_nanos(), mask));
                    }
                }
                _ => {}
            }
        }
        let mut leftovers: Vec<_> =
            open.into_values().map(|(s, mask)| (s, u64::MAX, mask)).collect();
        leftovers.sort_unstable();
        partitions.extend(leftovers);

        let mut churn_toggles = [0u32; Region::COUNT];
        for r in 0..Region::COUNT {
            churn_toggles[r] = (counts[r] as f64 * cfg.churn_prob).round() as u32;
        }
        let active_regions: Vec<u8> =
            (0..Region::COUNT as u8).filter(|&r| counts[r as usize] > 0).collect();

        let latency = LatencyModel::default();
        let lookahead = latency.cross_region_lookahead();
        let mut engine = ShardedEngine::new(Region::COUNT, shards, lookahead, cfg.seed);
        if let Some(w) = cfg.workers {
            engine.set_workers(w);
        }

        let states = (0..shards)
            .map(|s| ShardState {
                regions: (0..Region::COUNT)
                    .map(|r| (r % shards == s).then(|| RegionState::new(start[r], counts[r])))
                    .collect(),
                counters: [0; CTR_COUNT],
            })
            .collect();

        // Stagger the region pulses so they do not all land at the same
        // instant; seed order (region order) is part of the input.
        for &r in &active_regions {
            let offset = SimDuration::from_nanos(
                cfg.tick.as_nanos() * (r as u64 + 1) / Region::COUNT as u64,
            );
            engine.seed_event(SimTime::ZERO + offset, Ev::Tick { region: r });
        }

        let world = World {
            seed: cfg.seed,
            latency,
            tick: cfg.tick,
            ops_per_tick: cfg.ops_per_tick,
            churn_toggles,
            start,
            active_regions,
            keys,
            server,
            routing,
            partitions,
            provider_expiry: cfg.provider_expiry,
            provider_republish: cfg.provider_republish,
        };
        ShardSim { world, engine, states, deadline: SimTime::ZERO + cfg.duration }
    }

    /// Number of shards the cell was built with.
    pub fn shards(&self) -> usize {
        self.engine.shards()
    }

    /// Runs the cell to its configured deadline and collects the result.
    pub fn run(&mut self) -> ShardSimResult {
        let world = &self.world;
        let events = self.engine.run_until(self.deadline, &mut self.states, &|st, ctx, at, ev| {
            handle(world, st, ctx, at, ev);
        });

        let mut counters = [0u64; CTR_COUNT];
        for st in &self.states {
            for (acc, v) in counters.iter_mut().zip(st.counters.iter()) {
                *acc += v;
            }
        }
        let metrics_fnv = counters.iter().fold(FNV_BASIS, |h, &v| fnv_u64(h, v));

        let shards = self.engine.shards();
        let mut order_fnv = FNV_BASIS;
        let mut flight_fnv = FNV_BASIS;
        let mut state_bytes = 0u64;
        for r in 0..Region::COUNT {
            if let Some(rs) = &self.states[r % shards].regions[r] {
                order_fnv = fnv_u64(order_fnv, rs.order_fnv);
                for f in rs.flight.iter() {
                    for v in [
                        f.trace_id,
                        f.span_id,
                        f.peer as u64,
                        f.a,
                        f.b,
                        f.start.as_nanos(),
                        f.end.as_nanos(),
                    ] {
                        flight_fnv = fnv_u64(flight_fnv, v);
                    }
                }
                state_bytes += rs.bytes();
            }
        }
        let bytes_per_node = (world.static_bytes() + state_bytes) / world.keys.len().max(1) as u64;

        ShardSimResult {
            events: self.engine.events_dispatched().max(events),
            counters: CTR_NAMES.iter().copied().zip(counters).collect(),
            metrics_fnv,
            order_fnv,
            flight_fnv,
            bytes_per_node,
        }
    }
}

// ---------------------------------------------------------------------
// Event handler
// ---------------------------------------------------------------------

/// Dispatches one event in its region. All state it mutates lives in
/// that region's [`RegionState`] (plus the shard-local counters).
fn handle(world: &World, st: &mut ShardState, ctx: &mut ShardCtx<'_, Ev>, at: SimTime, ev: Ev) {
    let region = ctx.region();
    let counters = &mut st.counters;
    let rs = st.regions[region].as_mut().expect("event delivered to unowned region");
    rs.order_fnv = fnv_u64(fnv_u64(rs.order_fnv, at.as_nanos()), ctx.event_key());

    match ev {
        Ev::Tick { region: r } => {
            counters[Ctr::Ticks as usize] += 1;
            rs.round += 1;
            let round = rs.round;

            for _ in 0..world.churn_toggles[region] {
                let local = ctx.rng().random_range(0..rs.count as usize);
                let on = !rs.online[local];
                rs.online[local] = on;
                counters[if on { Ctr::ChurnOn } else { Ctr::ChurnOff } as usize] += 1;
            }

            // Record expiry: pop only the due prefix (deadlines are
            // nondecreasing), validate lazily against the live record —
            // a refreshed record has a newer `stored_at` and survives.
            while rs.expiry.front().is_some_and(|&(d, ..)| d <= at) {
                let (_, to, cid) = rs.expiry.pop_front().unwrap();
                if let Some(&(_, stored)) = rs.providers.get(&(to, cid)) {
                    if stored + world.provider_expiry <= at {
                        rs.providers.remove(&(to, cid));
                        counters[Ctr::ProviderExpired as usize] += 1;
                    }
                }
            }

            // Reprovide sweep: re-walk every due publication whose
            // publisher is online; defer a full interval otherwise (the
            // constant offset keeps the queue's deadlines nondecreasing).
            while rs.reprovide.front().is_some_and(|&(d, ..)| d <= at) {
                let (_, node, cid) = rs.reprovide.pop_front().unwrap();
                let local = (node - rs.start) as usize;
                if rs.online[local] {
                    counters[Ctr::SweepRepublish as usize] += 1;
                    start_walk(world, rs, counters, ctx, at, node, cid, true);
                } else {
                    counters[Ctr::SweepDeferred as usize] += 1;
                    rs.reprovide.push_back((at + world.provider_republish, node, cid));
                }
            }

            for i in 0..world.ops_per_tick {
                let local = ctx.rng().random_range(0..rs.count as usize);
                if !rs.online[local] {
                    continue;
                }
                let node = rs.start + local as u32;
                if ctx.rng().random_bool(0.5) {
                    counters[Ctr::PublishStart as usize] += 1;
                    let cid = cid_of(world.seed, region, round, i);
                    start_walk(world, rs, counters, ctx, at, node, cid, true);
                } else {
                    counters[Ctr::RetrieveStart as usize] += 1;
                    let src = world.active_regions
                        [ctx.rng().random_range(0..world.active_regions.len())]
                        as usize;
                    let round2 = ctx.rng().random_range(1..=round);
                    let i2 = ctx.rng().random_range(0..world.ops_per_tick);
                    let cid = cid_of(world.seed, src, round2, i2);
                    start_walk(world, rs, counters, ctx, at, node, cid, false);
                }
            }

            ctx.schedule(world.tick, Ev::Tick { region: r });
        }

        Ev::Rpc { kind, to, walker, wregion, slot, gen, rpc_no, target, .. } => {
            let local = (to - rs.start) as usize;
            if !rs.online[local] {
                counters[Ctr::RpcOffline as usize] += 1;
                return;
            }
            // The reply leaves *now*; a partition active at this instant
            // cuts it (the walker's timeout covers the loss).
            if world.blocked(at, region, wregion as usize) {
                counters[Ctr::RpcBlocked as usize] += 1;
                return;
            }
            let mut found = [NONE32; REPLY_MAX];
            match kind {
                KIND_LOOKUP => {
                    // Up to REPLY_MAX routing entries closest to target.
                    let row = &world.routing
                        [to as usize * ROUTE_PER_NODE..(to as usize + 1) * ROUTE_PER_NODE];
                    let mut best: [(u64, u32); REPLY_MAX] = [(u64::MAX, NONE32); REPLY_MAX];
                    for &e in row {
                        if e == NONE32 || e == walker {
                            continue;
                        }
                        let d = world.keys[e as usize] ^ target;
                        if d < best[REPLY_MAX - 1].0 && !best.contains(&(d, e)) {
                            best[REPLY_MAX - 1] = (d, e);
                            best.sort_unstable();
                        }
                    }
                    for (f, &(_, e)) in found.iter_mut().zip(best.iter()) {
                        *f = e;
                    }
                }
                KIND_GETPROV => {
                    found[0] = rs.providers.get(&(to, target)).map_or(NONE32, |&(p, _)| p);
                }
                _ => {} // KIND_FETCH: the reply itself is the payload.
            }
            let delay = world.latency.sample_one_way_floored(
                ctx.rng(),
                Region::from_index(region),
                Region::from_index(wregion as usize),
            );
            ctx.schedule(
                delay,
                Ev::Reply { region: wregion, kind, slot, gen, rpc_no, from: to, found },
            );
        }

        Ev::Reply { kind, slot, gen, rpc_no, from, found, .. } => {
            let w = &mut rs.walks[slot as usize];
            if w.gen != gen || w.open & (1 << rpc_no) == 0 {
                return; // stale, or the timeout won the race
            }
            w.open &= !(1 << rpc_no);
            counters[Ctr::RpcReply as usize] += 1;
            match kind {
                KIND_LOOKUP => {
                    let d = world.keys[from as usize] ^ w.target;
                    w.done += 1;
                    w.best_done = w.best_done.min(d);
                    // Track the replica set (closest replied peers).
                    if (w.closest_len as usize) < REPLICAS {
                        w.closest[w.closest_len as usize] = (d, from);
                        w.closest_len += 1;
                        w.closest[..w.closest_len as usize].sort_unstable();
                    } else if d < w.closest[REPLICAS - 1].0 {
                        w.closest[REPLICAS - 1] = (d, from);
                        w.closest.sort_unstable();
                    }
                    for &f in found.iter().filter(|&&f| f != NONE32) {
                        insert_candidate(w, world.keys[f as usize] ^ w.target, f);
                    }
                    walk_step(world, rs, counters, ctx, at, slot);
                }
                KIND_GETPROV => {
                    let provider = found[0];
                    if provider == NONE32 {
                        counters[Ctr::RetrieveMiss as usize] += 1;
                        let (tkey, node, t0, rpcs) = (w.tkey, w.node, w.t0, w.rpc_no);
                        rs.record_flight(tkey, node, from, "retrieve_miss", rpcs, t0, at);
                        free_walk(rs, slot);
                        return;
                    }
                    start_fetch(world, rs, counters, ctx, at, slot, provider);
                }
                _ => {
                    // KIND_FETCH: content verified, retrieval complete.
                    let (node, t0) = (w.node, w.t0);
                    let (tkey, rpcs) = (w.tkey, w.rpc_no);
                    counters[Ctr::RetrieveDone as usize] += 1;
                    counters[Ctr::RetrieveNanos as usize] += at.since(t0).as_nanos();
                    let local = (node - rs.start) as usize;
                    RegionState::ring_insert(
                        &mut rs.conn,
                        &mut rs.conn_cur,
                        local,
                        CONN_SLOTS,
                        from,
                    );
                    RegionState::ring_insert(
                        &mut rs.addr,
                        &mut rs.addr_cur,
                        local,
                        ADDR_SLOTS,
                        from,
                    );
                    rs.record_flight(tkey, node, from, "retrieve_done", rpcs, t0, at);
                    free_walk(rs, slot);
                }
            }
        }

        Ev::Timeout { slot, gen, rpc_no, .. } => {
            let w = &mut rs.walks[slot as usize];
            if w.gen != gen || w.open & (1 << rpc_no) == 0 {
                return; // the reply already arrived
            }
            w.open &= !(1 << rpc_no);
            counters[Ctr::RpcTimeout as usize] += 1;
            if w.phase == 0 {
                walk_step(world, rs, counters, ctx, at, slot);
            } else {
                counters[Ctr::RetrieveMiss as usize] += 1;
                let (tkey, node, t0, rpcs) = (w.tkey, w.node, w.t0, w.rpc_no);
                rs.record_flight(tkey, node, NO_PEER, "retrieve_miss", rpcs, t0, at);
                free_walk(rs, slot);
            }
        }

        Ev::Store { to, cid, provider, .. } => {
            counters[Ctr::ProviderStore as usize] += 1;
            rs.providers.insert((to, cid), (provider, at));
            rs.expiry.push_back((at + world.provider_expiry, to, cid));
        }
    }
}

/// Allocates a walk slot, seeds candidates from the walker's own routing
/// arena, and issues the first α lookups.
#[allow(clippy::too_many_arguments)]
fn start_walk(
    world: &World,
    rs: &mut RegionState,
    counters: &mut [u64; CTR_COUNT],
    ctx: &mut ShardCtx<'_, Ev>,
    at: SimTime,
    node: u32,
    target: u64,
    publish: bool,
) {
    let slot = match rs.free_walks.pop() {
        Some(s) => s,
        None => {
            rs.walks.push(Walk {
                gen: 0,
                node: 0,
                target: 0,
                t0: SimTime::ZERO,
                tkey: 0,
                publish: false,
                phase: 0,
                rpc_no: 0,
                open: 0,
                done: 0,
                best_done: 0,
                cand: [(0, 0); CAND],
                cand_len: 0,
                closest: [(0, 0); REPLICAS],
                closest_len: 0,
                seen: [0; MAX_RPCS],
                seen_len: 0,
            });
            (rs.walks.len() - 1) as u32
        }
    };
    let w = &mut rs.walks[slot as usize];
    w.node = node;
    w.target = target;
    w.t0 = at;
    // One tick starts several walks; mix node+target into the event's
    // trace key so each walk gets a distinct, shard-invariant trace id.
    w.tkey = splitmix64(ctx.trace_key() ^ ((node as u64) << 32) ^ target) | 1;
    w.publish = publish;
    w.phase = 0;
    w.rpc_no = 0;
    w.open = 0;
    w.done = 0;
    w.best_done = u64::MAX;
    w.cand_len = 0;
    w.closest_len = 0;
    w.seen_len = 0;
    let row = &world.routing[node as usize * ROUTE_PER_NODE..(node as usize + 1) * ROUTE_PER_NODE];
    for &e in row {
        if e != NONE32 {
            let d = world.keys[e as usize] ^ target;
            insert_candidate(&mut rs.walks[slot as usize], d, e);
        }
    }
    walk_step(world, rs, counters, ctx, at, slot);
}

/// Inserts an unqueried candidate, deduped against the candidate window
/// and the queried set; keeps the window sorted by `(distance, id)`.
fn insert_candidate(w: &mut Walk, d: u64, peer: u32) {
    if peer == w.node
        || w.seen[..w.seen_len as usize].contains(&peer)
        || w.cand[..w.cand_len as usize].iter().any(|&(_, p)| p == peer)
    {
        return;
    }
    if (w.cand_len as usize) < CAND {
        w.cand[w.cand_len as usize] = (d, peer);
        w.cand_len += 1;
        w.cand[..w.cand_len as usize].sort_unstable();
    } else if d < w.cand[CAND - 1].0 {
        w.cand[CAND - 1] = (d, peer);
        w.cand.sort_unstable();
    }
}

/// Keeps up to α lookups in flight while progress is possible; finishes
/// the lookup phase once the walk has quiesced (converged, exhausted, or
/// out of budget).
fn walk_step(
    world: &World,
    rs: &mut RegionState,
    counters: &mut [u64; CTR_COUNT],
    ctx: &mut ShardCtx<'_, Ev>,
    at: SimTime,
    slot: u32,
) {
    loop {
        let w = &mut rs.walks[slot as usize];
        if w.open.count_ones() >= ALPHA
            || (w.rpc_no as usize) >= MAX_RPCS
            || w.cand_len == 0
            || (w.done >= 3 && w.cand[0].0 >= w.best_done)
        {
            break;
        }
        // Pop the closest candidate and query it.
        let (_, peer) = w.cand[0];
        w.cand.copy_within(1..w.cand_len as usize, 0);
        w.cand_len -= 1;
        w.seen[w.seen_len as usize] = peer;
        w.seen_len += 1;
        let rpc_no = w.rpc_no;
        w.rpc_no += 1;
        w.open |= 1 << rpc_no;
        let (walker, target, gen) = (w.node, w.target, w.gen);
        send_rpc(world, counters, ctx, at, KIND_LOOKUP, walker, peer, slot, gen, rpc_no, target);
    }
    let w = &rs.walks[slot as usize];
    if w.open == 0 && w.phase == 0 {
        finish_lookup(world, rs, counters, ctx, at, slot);
    }
}

/// Sends one RPC: always arms the walker-side timeout, then delivers the
/// request unless the link is partitioned at this exact instant.
#[allow(clippy::too_many_arguments)]
fn send_rpc(
    world: &World,
    counters: &mut [u64; CTR_COUNT],
    ctx: &mut ShardCtx<'_, Ev>,
    at: SimTime,
    kind: u8,
    walker: u32,
    to: u32,
    slot: u32,
    gen: u32,
    rpc_no: u8,
    target: u64,
) {
    counters[Ctr::RpcSent as usize] += 1;
    let wregion = ctx.region() as u8;
    ctx.schedule_at(at + RPC_TIMEOUT, Ev::Timeout { region: wregion, slot, gen, rpc_no });
    let dst = world.region_of(to);
    if world.blocked(at, wregion as usize, dst) {
        counters[Ctr::RpcBlocked as usize] += 1;
        return;
    }
    let delay = world.latency.sample_one_way_floored(
        ctx.rng(),
        Region::from_index(wregion as usize),
        Region::from_index(dst),
    );
    ctx.schedule(
        delay,
        Ev::Rpc { region: dst as u8, kind, to, walker, wregion, slot, gen, rpc_no, target },
    );
}

/// The lookup phase quiesced: publishers replicate their provider
/// record to the closest replied peers; retrievers ask the closest one
/// for providers.
fn finish_lookup(
    world: &World,
    rs: &mut RegionState,
    counters: &mut [u64; CTR_COUNT],
    ctx: &mut ShardCtx<'_, Ev>,
    at: SimTime,
    slot: u32,
) {
    let w = &rs.walks[slot as usize];
    let (node, target, t0, publish) = (w.node, w.target, w.t0, w.publish);
    let (tkey, rpcs) = (w.tkey, w.rpc_no);
    let closest: Vec<u32> = w.closest[..w.closest_len as usize].iter().map(|&(_, p)| p).collect();
    if publish {
        let wregion = ctx.region();
        for &peer in &closest {
            let dst = world.region_of(peer);
            if world.blocked(at, wregion, dst) {
                counters[Ctr::RpcBlocked as usize] += 1;
                continue;
            }
            let delay = world.latency.sample_one_way_floored(
                ctx.rng(),
                Region::from_index(wregion),
                Region::from_index(dst),
            );
            ctx.schedule(
                delay,
                Ev::Store { region: dst as u8, to: peer, cid: target, provider: node },
            );
        }
        counters[Ctr::PublishDone as usize] += 1;
        counters[Ctr::PublishNanos as usize] += at.since(t0).as_nanos();
        // Arm the reprovide chain: the next sweep tick past this
        // deadline re-walks the publication (completion re-arms again,
        // so the chain outlives any single record's 24 h expiry).
        rs.reprovide.push_back((at + world.provider_republish, node, target));
        rs.record_flight(tkey, node, NO_PEER, "publish_done", rpcs, t0, at);
        free_walk(rs, slot);
        return;
    }
    match closest.first() {
        None => {
            counters[Ctr::RetrieveMiss as usize] += 1;
            rs.record_flight(tkey, node, NO_PEER, "retrieve_miss", rpcs, t0, at);
            free_walk(rs, slot);
        }
        Some(&peer) => {
            let w = &mut rs.walks[slot as usize];
            w.phase = 1;
            let rpc_no = w.rpc_no;
            w.rpc_no += 1;
            w.open |= 1 << rpc_no;
            let gen = w.gen;
            send_rpc(world, counters, ctx, at, KIND_GETPROV, node, peer, slot, gen, rpc_no, target);
        }
    }
}

/// A provider was found: resolve its address (book hit skips the second
/// walk, §3.2), dial (warm connections skip the handshake), and fetch.
fn start_fetch(
    world: &World,
    rs: &mut RegionState,
    counters: &mut [u64; CTR_COUNT],
    ctx: &mut ShardCtx<'_, Ev>,
    at: SimTime,
    slot: u32,
    provider: u32,
) {
    let w = &rs.walks[slot as usize];
    let (node, gen) = (w.node, w.gen);
    let local = (node - rs.start) as usize;
    let wregion = ctx.region();
    let dst = world.region_of(provider);
    let one_way = |rng: &mut StdRng| {
        world.latency.sample_one_way_floored(
            rng,
            Region::from_index(wregion),
            Region::from_index(dst),
        )
    };
    // Address resolution: a book hit costs nothing; a miss pays a second
    // DHT walk, modeled as two extra round trips.
    let mut extra = SimDuration::ZERO;
    if RegionState::ring_contains(&rs.addr, local, ADDR_SLOTS, provider) {
        counters[Ctr::AddrHit as usize] += 1;
    } else {
        counters[Ctr::AddrMiss as usize] += 1;
        for _ in 0..4 {
            extra += one_way(ctx.rng());
        }
    }
    // Dialing: a warm connection skips the handshake round trip.
    if RegionState::ring_contains(&rs.conn, local, CONN_SLOTS, provider) {
        counters[Ctr::DialWarm as usize] += 1;
    } else {
        counters[Ctr::DialCold as usize] += 1;
        extra = extra + one_way(ctx.rng()) + one_way(ctx.rng());
    }
    let w = &mut rs.walks[slot as usize];
    w.phase = 2;
    let rpc_no = w.rpc_no;
    w.rpc_no += 1;
    w.open |= 1 << rpc_no;
    counters[Ctr::RpcSent as usize] += 1;
    ctx.schedule_at(
        at + extra + RPC_TIMEOUT,
        Ev::Timeout { region: wregion as u8, slot, gen, rpc_no },
    );
    if world.blocked(at, wregion, dst) {
        counters[Ctr::RpcBlocked as usize] += 1;
        return;
    }
    let delay = extra + one_way(ctx.rng());
    ctx.schedule(
        delay,
        Ev::Rpc {
            region: dst as u8,
            kind: KIND_FETCH,
            to: provider,
            walker: node,
            wregion: wregion as u8,
            slot,
            gen,
            rpc_no,
            target: 0,
        },
    );
}

/// Retires a walk slot: bump the generation (stale replies and timeouts
/// check it) and recycle.
fn free_walk(rs: &mut RegionState, slot: u32) {
    rs.walks[slot as usize].gen = rs.walks[slot as usize].gen.wrapping_add(1);
    rs.free_walks.push(slot);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_cfg(nodes: usize, secs: u64, shards: usize, seed: u64) -> ShardSimConfig {
        ShardSimConfig {
            nodes,
            shards,
            seed,
            duration: SimDuration::from_secs(secs),
            tick: SimDuration::from_millis(200),
            ops_per_tick: 3,
            ..ShardSimConfig::default()
        }
    }

    fn run(cfg: &ShardSimConfig) -> ShardSimResult {
        ShardSim::build(cfg).run()
    }

    #[test]
    fn event_stays_small() {
        assert!(std::mem::size_of::<Ev>() <= 80, "Ev grew past the NetEvent bound");
    }

    #[test]
    fn cell_produces_work() {
        let r = run(&small_cfg(1500, 20, 1, 7));
        assert!(r.events > 1000, "events: {}", r.events);
        assert!(r.counter("publish_done") > 0);
        assert!(r.counter("retrieve_done") > 0, "no retrieval ever completed");
        assert!(r.counter("provider_store") > 0);
        assert!(r.counter("rpc_reply") > r.counter("rpc_timeout"));
        assert!(r.bytes_per_node > 100 && r.bytes_per_node < 2000, "{}", r.bytes_per_node);
    }

    #[test]
    fn sharded_run_is_byte_identical_to_serial() {
        let serial = run(&small_cfg(1200, 15, 1, 42));
        for shards in [2, 3, 6] {
            let sharded = run(&small_cfg(1200, 15, shards, 42));
            assert_eq!(sharded, serial, "shards={shards} diverged");
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let mut cfg = small_cfg(1000, 10, 6, 9);
        cfg.workers = Some(1);
        let one = run(&cfg);
        cfg.workers = Some(3);
        assert_eq!(run(&cfg), one);
    }

    #[test]
    fn partition_boundary_mid_window_stays_deterministic() {
        // Lookahead is 6.25 ms; place both partition edges strictly
        // inside PDES windows (not multiples of the lookahead) and let it
        // sever two busy regions. Shard counts must still agree bit for
        // bit, and the partition must actually cut traffic.
        let mut cfg = small_cfg(1500, 20, 1, 11);
        cfg.faults.partition(
            SimTime::ZERO + SimDuration::from_nanos(4_003_117_001),
            SimDuration::from_nanos(7_000_000_999),
            vec![Region::EuropeCentral, Region::EastAsia],
        );
        let serial = run(&cfg);
        assert!(serial.counter("rpc_blocked") > 0, "partition never bit");
        for shards in [2, 3, 6] {
            cfg.shards = shards;
            assert_eq!(run(&cfg), serial, "shards={shards} diverged under faults");
        }
    }

    #[test]
    fn churn_toggles_nodes_and_stays_deterministic() {
        let mut cfg = small_cfg(1500, 15, 1, 5);
        cfg.churn_prob = 0.01;
        let serial = run(&cfg);
        assert!(serial.counter("churn_off") > 0);
        cfg.shards = 6;
        assert_eq!(run(&cfg), serial);
    }

    #[test]
    fn flight_recorder_captures_walk_completions_identically_across_shards() {
        let serial = run(&small_cfg(1200, 15, 1, 42));
        assert_ne!(serial.flight_fnv, FNV_BASIS, "flight rings stayed empty");
        for shards in [2, 6] {
            let sharded = run(&small_cfg(1200, 15, shards, 42));
            assert_eq!(sharded.flight_fnv, serial.flight_fnv, "shards={shards} flight diverged");
        }
    }

    #[test]
    fn provider_lifecycle_runs_and_stays_shard_invariant() {
        // Fast-forward lifecycle: 2 s republish / 5 s expiry over a 20 s
        // run means every publication re-walks several times and
        // unrefreshed records age out — and the whole lifecycle (expiry
        // pops, sweep re-walks, deferrals under churn) must land in the
        // shared metrics/order fingerprints identically at every shard
        // count.
        let mut cfg = small_cfg(1500, 20, 1, 31);
        cfg.provider_republish = SimDuration::from_secs(2);
        cfg.provider_expiry = SimDuration::from_secs(5);
        cfg.churn_prob = 0.01;
        let serial = run(&cfg);
        assert!(serial.counter("sweep_republish") > 0, "no reprovide sweep ran");
        assert!(serial.counter("provider_expired") > 0, "no record ever expired");
        assert!(serial.counter("sweep_deferred") > 0, "churn never parked a reprovide");
        // Refresh keeps the store bounded: stores outnumber expiries.
        assert!(serial.counter("provider_store") > serial.counter("provider_expired"));
        for shards in [2, 6] {
            cfg.shards = shards;
            assert_eq!(run(&cfg), serial, "shards={shards} diverged with lifecycle on");
        }
    }

    #[test]
    fn rerun_is_reproducible() {
        let cfg = small_cfg(1000, 10, 3, 123);
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn seeds_change_the_fingerprints() {
        let a = run(&small_cfg(1000, 10, 1, 1));
        let b = run(&small_cfg(1000, 10, 1, 2));
        assert_ne!(a.order_fnv, b.order_fnv);
        assert_ne!(a.metrics_fnv, b.metrics_fnv);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The tentpole guarantee at the workload level: shards ∈ {2,3,6}
        /// reproduce the serial (shards=1) order and metrics fingerprints
        /// for random seeds and op mixes.
        #[test]
        fn shard_count_invariance(seed in 0u64..1_000_000, ops in 1u32..5) {
            let mut cfg = small_cfg(800, 8, 1, seed);
            cfg.ops_per_tick = ops;
            let serial = run(&cfg);
            for shards in [2usize, 3, 6] {
                cfg.shards = shards;
                let r = run(&cfg);
                prop_assert_eq!(r.order_fnv, serial.order_fnv, "order diverged");
                prop_assert_eq!(r.metrics_fnv, serial.metrics_fnv, "metrics diverged");
                prop_assert_eq!(r.flight_fnv, serial.flight_fnv, "flight recorder diverged");
                prop_assert_eq!(r.events, serial.events);
                prop_assert_eq!(r.bytes_per_node, serial.bytes_per_node);
            }
        }
    }
}
