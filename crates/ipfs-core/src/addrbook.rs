//! The recently-seen address book.
//!
//! Paper §3.2: "each IPFS node maintains an address book of up to 900
//! recently seen peers. Nodes check whether they already have an address
//! for the PeerID they have discovered before performing any further
//! lookups" — a cache that can skip the second DHT walk entirely.
//!
//! Entries live in a slab arena and the recency queue holds `(stamp, slot)`
//! pairs — 12 bytes — instead of cloning a `PeerId` (a heap-allocated
//! multihash) per touch, which dominated the book's memory traffic in
//! large populations. Eviction order is unchanged from the stamp-based
//! original: stamps are unique and monotonic, so the oldest live record is
//! exactly the minimum-stamp entry.

use multiformats::{Multiaddr, PeerId};
use std::collections::{HashMap, VecDeque};

/// One slab slot. `stamp == 0` marks a dead slot (never a live stamp: the
/// clock starts at 1), so stale recency records can never resurrect a
/// removed or recycled entry.
#[derive(Debug, Clone)]
struct Slot {
    peer: PeerId,
    stamp: u64,
    addrs: Vec<Multiaddr>,
}

/// A bounded LRU map from PeerID to known addresses.
#[derive(Debug, Clone)]
pub struct AddressBook {
    capacity: usize,
    /// Peer → slab slot of its live entry.
    index: HashMap<PeerId, u32>,
    /// Slab of entries; dead slots are recycled through `free`.
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Recency queue of `(stamp, slot)` records, oldest first. A record is
    /// live only while its stamp matches the slot's; later touches push a
    /// fresh record and orphan the old one, which eviction skips.
    recency: VecDeque<(u64, u32)>,
    clock: u64,
    /// Lifetime hit/miss counters.
    pub hits: u64,
    /// Lifetime misses.
    pub misses: u64,
}

impl AddressBook {
    /// Creates a book with the paper's default capacity of 900.
    pub fn new(capacity: usize) -> AddressBook {
        assert!(capacity > 0);
        AddressBook {
            capacity,
            index: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            recency: VecDeque::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Records addresses for a peer (refreshes recency). Clones only when
    /// the peer is new or its addresses actually changed — re-announcing
    /// the same addresses is the common case on the DHT walk hot path.
    pub fn insert(&mut self, peer: &PeerId, addrs: &[Multiaddr]) {
        if addrs.is_empty() {
            return;
        }
        self.clock += 1;
        let clock = self.clock;
        let slot = if let Some(&slot) = self.index.get(peer) {
            let entry = &mut self.slots[slot as usize];
            entry.stamp = clock;
            if entry.addrs.as_slice() != addrs {
                entry.addrs = addrs.to_vec();
            }
            slot
        } else {
            if self.index.len() >= self.capacity {
                self.evict_oldest();
            }
            let slot = match self.free.pop() {
                Some(slot) => {
                    self.slots[slot as usize] =
                        Slot { peer: peer.clone(), stamp: clock, addrs: addrs.to_vec() };
                    slot
                }
                None => {
                    self.slots.push(Slot {
                        peer: peer.clone(),
                        stamp: clock,
                        addrs: addrs.to_vec(),
                    });
                    (self.slots.len() - 1) as u32
                }
            };
            self.index.insert(peer.clone(), slot);
            slot
        };
        self.touch(clock, slot);
    }

    /// Looks up addresses, refreshing recency on hit and counting
    /// hit/miss statistics.
    pub fn lookup(&mut self, peer: &PeerId) -> Option<Vec<Multiaddr>> {
        self.clock += 1;
        let clock = self.clock;
        match self.index.get(peer) {
            Some(&slot) => {
                let entry = &mut self.slots[slot as usize];
                entry.stamp = clock;
                self.hits += 1;
                let addrs = entry.addrs.clone();
                self.touch(clock, slot);
                Some(addrs)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Non-mutating presence check (no statistics, no recency bump).
    pub fn contains(&self, peer: &PeerId) -> bool {
        self.index.contains_key(peer)
    }

    /// Drops a peer (e.g. its addresses proved stale). Its queue records
    /// become orphans that eviction skips; the slot is recycled.
    pub fn remove(&mut self, peer: &PeerId) {
        if let Some(slot) = self.index.remove(peer) {
            self.release(slot);
        }
    }

    /// Number of peers currently remembered.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the book is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Logical bytes held (length-based, allocation-independent): index
    /// entry + slab slot + peer-multihash heap per live peer, a fixed
    /// per-address estimate for stored multiaddrs, and the recency queue
    /// at 12 bytes per record.
    pub fn bytes_estimate(&self) -> u64 {
        /// Estimated heap bytes per stored [`Multiaddr`] (a short protocol
        /// component vector, e.g. `/ip4/../tcp/..`).
        const ADDR_BYTES: usize = 48;
        let mut total = std::mem::size_of::<AddressBook>();
        total += self.recency.len() * std::mem::size_of::<(u64, u32)>();
        for &slot in self.index.values() {
            let entry = &self.slots[slot as usize];
            total += std::mem::size_of::<(PeerId, u32)>() + std::mem::size_of::<Slot>();
            total += entry.peer.as_multihash().digest().len();
            total += entry.addrs.len() * ADDR_BYTES;
        }
        total as u64
    }

    /// Appends a recency record, compacting the queue when orphaned
    /// records outnumber live ones ~3:1 so it stays O(capacity).
    fn touch(&mut self, stamp: u64, slot: u32) {
        self.recency.push_back((stamp, slot));
        if self.recency.len() > 4 * self.capacity.max(self.index.len()) {
            let slots = &self.slots;
            self.recency.retain(|&(s, slot)| slots[slot as usize].stamp == s);
        }
    }

    /// Removes the least-recently-used entry: pop queue records until one
    /// is still live, then drop that peer.
    fn evict_oldest(&mut self) {
        while let Some((stamp, slot)) = self.recency.pop_front() {
            if self.slots[slot as usize].stamp == stamp {
                let peer = self.slots[slot as usize].peer.clone();
                self.index.remove(&peer);
                self.release(slot);
                return;
            }
        }
    }

    /// Marks a slot dead and recycles it. Shrinks the address list so a
    /// dead slot holds no heap memory beyond the (reused) peer id.
    fn release(&mut self, slot: u32) {
        let entry = &mut self.slots[slot as usize];
        entry.stamp = 0;
        entry.addrs = Vec::new();
        self.free.push(slot);
    }
}

impl Default for AddressBook {
    fn default() -> Self {
        AddressBook::new(900)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiformats::Keypair;

    fn peer(seed: u64) -> PeerId {
        Keypair::from_seed(seed).peer_id()
    }

    fn addr(port: u16) -> Vec<Multiaddr> {
        vec![format!("/ip4/10.0.0.1/tcp/{port}").parse().unwrap()]
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut book = AddressBook::new(10);
        book.insert(&peer(1), &addr(1));
        assert_eq!(book.lookup(&peer(1)), Some(addr(1)));
        assert_eq!(book.lookup(&peer(2)), None);
        assert_eq!((book.hits, book.misses), (1, 1));
    }

    #[test]
    fn capacity_is_900_by_default() {
        let book = AddressBook::default();
        assert_eq!(book.capacity, 900);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut book = AddressBook::new(3);
        book.insert(&peer(1), &addr(1));
        book.insert(&peer(2), &addr(2));
        book.insert(&peer(3), &addr(3));
        // Touch 1 so 2 becomes the LRU.
        book.lookup(&peer(1));
        book.insert(&peer(4), &addr(4));
        assert_eq!(book.len(), 3);
        assert!(book.contains(&peer(1)));
        assert!(!book.contains(&peer(2)), "LRU entry evicted");
        assert!(book.contains(&peer(3)));
        assert!(book.contains(&peer(4)));
    }

    #[test]
    fn reinsert_does_not_grow() {
        let mut book = AddressBook::new(2);
        book.insert(&peer(1), &addr(1));
        book.insert(&peer(1), &addr(9));
        assert_eq!(book.len(), 1);
        assert_eq!(book.lookup(&peer(1)), Some(addr(9)));
    }

    #[test]
    fn empty_addresses_ignored() {
        let mut book = AddressBook::new(2);
        book.insert(&peer(1), &[]);
        assert!(book.is_empty());
    }

    #[test]
    fn remove_clears_entry() {
        let mut book = AddressBook::new(2);
        book.insert(&peer(1), &addr(1));
        book.remove(&peer(1));
        assert!(!book.contains(&peer(1)));
    }

    #[test]
    fn removed_peer_does_not_shield_survivors() {
        // A removed peer's orphaned queue record must not satisfy an
        // eviction (that would silently under-evict).
        let mut book = AddressBook::new(2);
        book.insert(&peer(1), &addr(1));
        book.insert(&peer(2), &addr(2));
        book.remove(&peer(1));
        book.insert(&peer(3), &addr(3));
        book.insert(&peer(4), &addr(4));
        assert_eq!(book.len(), 2);
        assert!(!book.contains(&peer(2)), "oldest live entry evicted");
        assert!(book.contains(&peer(3)));
        assert!(book.contains(&peer(4)));
    }

    #[test]
    fn recycled_slot_does_not_shield_survivors() {
        // peer(1)'s slot is recycled for peer(3); peer(1)'s orphaned
        // recency records must not count for the new occupant.
        let mut book = AddressBook::new(2);
        book.insert(&peer(1), &addr(1));
        book.insert(&peer(2), &addr(2));
        book.remove(&peer(1));
        book.insert(&peer(3), &addr(3)); // reuses the freed slot
        book.insert(&peer(4), &addr(4)); // must evict 2, not skip via 1's ghost
        assert!(!book.contains(&peer(2)));
        assert!(book.contains(&peer(3)));
        assert!(book.contains(&peer(4)));
    }

    #[test]
    fn full_capacity_churn() {
        let mut book = AddressBook::new(900);
        for i in 0..2000 {
            book.insert(&peer(i), &addr((i % 60_000) as u16));
        }
        assert_eq!(book.len(), 900);
        // The most recent 900 survive.
        assert!(book.contains(&peer(1999)));
        assert!(!book.contains(&peer(0)));
    }

    #[test]
    fn recency_queue_stays_bounded() {
        let mut book = AddressBook::new(8);
        for round in 0..1000u64 {
            book.insert(&peer(round % 8), &addr(1));
            book.lookup(&peer((round + 1) % 8));
        }
        assert!(book.recency.len() <= 4 * 8 + 1, "queue compacts: {}", book.recency.len());
    }

    #[test]
    fn slab_stays_bounded_under_churn() {
        let mut book = AddressBook::new(8);
        for i in 0..1000u64 {
            book.insert(&peer(i), &addr(1));
        }
        // Evicted entries recycle their slots: the slab never exceeds the
        // live count by more than the burst between evict and reinsert.
        assert!(book.slots.len() <= 9, "slab grew to {}", book.slots.len());
        assert!(book.bytes_estimate() > 0);
    }

    #[test]
    fn bytes_estimate_shrinks_on_remove() {
        let mut book = AddressBook::new(8);
        book.insert(&peer(1), &addr(1));
        book.insert(&peer(2), &addr(2));
        let two = book.bytes_estimate();
        book.remove(&peer(2));
        assert!(book.bytes_estimate() < two);
    }
}
