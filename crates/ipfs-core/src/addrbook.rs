//! The recently-seen address book.
//!
//! Paper §3.2: "each IPFS node maintains an address book of up to 900
//! recently seen peers. Nodes check whether they already have an address
//! for the PeerID they have discovered before performing any further
//! lookups" — a cache that can skip the second DHT walk entirely.

use multiformats::{Multiaddr, PeerId};
use std::collections::{HashMap, VecDeque};

/// A bounded LRU map from PeerID to known addresses.
#[derive(Debug, Clone)]
pub struct AddressBook {
    capacity: usize,
    /// Entries with a logical-clock stamp for LRU eviction.
    entries: HashMap<PeerId, (u64, Vec<Multiaddr>)>,
    /// Recency queue of `(stamp, peer)` records, oldest first. A record is
    /// live only while its stamp matches the entry's; later touches push a
    /// fresh record and orphan the old one, which eviction skips. Stamps
    /// are unique and monotonic, so the oldest live record is exactly the
    /// minimum-stamp entry — the same victim a full scan would pick — at
    /// amortized O(1) instead of O(len) per eviction.
    recency: VecDeque<(u64, PeerId)>,
    clock: u64,
    /// Lifetime hit/miss counters.
    pub hits: u64,
    /// Lifetime misses.
    pub misses: u64,
}

impl AddressBook {
    /// Creates a book with the paper's default capacity of 900.
    pub fn new(capacity: usize) -> AddressBook {
        assert!(capacity > 0);
        AddressBook {
            capacity,
            entries: HashMap::new(),
            recency: VecDeque::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Records addresses for a peer (refreshes recency). Clones only when
    /// the peer is new or its addresses actually changed — re-announcing
    /// the same addresses is the common case on the DHT walk hot path.
    pub fn insert(&mut self, peer: &PeerId, addrs: &[Multiaddr]) {
        if addrs.is_empty() {
            return;
        }
        self.clock += 1;
        let clock = self.clock;
        if let Some((stamp, existing)) = self.entries.get_mut(peer) {
            *stamp = clock;
            if existing.as_slice() != addrs {
                *existing = addrs.to_vec();
            }
        } else {
            if self.entries.len() >= self.capacity {
                self.evict_oldest();
            }
            self.entries.insert(peer.clone(), (clock, addrs.to_vec()));
        }
        self.touch(clock, peer);
    }

    /// Looks up addresses, refreshing recency on hit and counting
    /// hit/miss statistics.
    pub fn lookup(&mut self, peer: &PeerId) -> Option<Vec<Multiaddr>> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(peer) {
            Some((stamp, addrs)) => {
                *stamp = clock;
                self.hits += 1;
                let addrs = addrs.clone();
                self.touch(clock, peer);
                Some(addrs)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Non-mutating presence check (no statistics, no recency bump).
    pub fn contains(&self, peer: &PeerId) -> bool {
        self.entries.contains_key(peer)
    }

    /// Drops a peer (e.g. its addresses proved stale). Its queue records
    /// become orphans that eviction skips.
    pub fn remove(&mut self, peer: &PeerId) {
        self.entries.remove(peer);
    }

    /// Number of peers currently remembered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the book is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends a recency record, compacting the queue when orphaned
    /// records outnumber live ones ~3:1 so it stays O(capacity).
    fn touch(&mut self, stamp: u64, peer: &PeerId) {
        self.recency.push_back((stamp, peer.clone()));
        if self.recency.len() > 4 * self.capacity.max(self.entries.len()) {
            let entries = &self.entries;
            self.recency.retain(|(s, p)| entries.get(p).is_some_and(|(live, _)| live == s));
        }
    }

    /// Removes the least-recently-used entry: pop queue records until one
    /// is still live, then drop that peer.
    fn evict_oldest(&mut self) {
        while let Some((stamp, peer)) = self.recency.pop_front() {
            if self.entries.get(&peer).is_some_and(|(live, _)| *live == stamp) {
                self.entries.remove(&peer);
                return;
            }
        }
    }
}

impl Default for AddressBook {
    fn default() -> Self {
        AddressBook::new(900)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiformats::Keypair;

    fn peer(seed: u64) -> PeerId {
        Keypair::from_seed(seed).peer_id()
    }

    fn addr(port: u16) -> Vec<Multiaddr> {
        vec![format!("/ip4/10.0.0.1/tcp/{port}").parse().unwrap()]
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut book = AddressBook::new(10);
        book.insert(&peer(1), &addr(1));
        assert_eq!(book.lookup(&peer(1)), Some(addr(1)));
        assert_eq!(book.lookup(&peer(2)), None);
        assert_eq!((book.hits, book.misses), (1, 1));
    }

    #[test]
    fn capacity_is_900_by_default() {
        let book = AddressBook::default();
        assert_eq!(book.capacity, 900);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut book = AddressBook::new(3);
        book.insert(&peer(1), &addr(1));
        book.insert(&peer(2), &addr(2));
        book.insert(&peer(3), &addr(3));
        // Touch 1 so 2 becomes the LRU.
        book.lookup(&peer(1));
        book.insert(&peer(4), &addr(4));
        assert_eq!(book.len(), 3);
        assert!(book.contains(&peer(1)));
        assert!(!book.contains(&peer(2)), "LRU entry evicted");
        assert!(book.contains(&peer(3)));
        assert!(book.contains(&peer(4)));
    }

    #[test]
    fn reinsert_does_not_grow() {
        let mut book = AddressBook::new(2);
        book.insert(&peer(1), &addr(1));
        book.insert(&peer(1), &addr(9));
        assert_eq!(book.len(), 1);
        assert_eq!(book.lookup(&peer(1)), Some(addr(9)));
    }

    #[test]
    fn empty_addresses_ignored() {
        let mut book = AddressBook::new(2);
        book.insert(&peer(1), &[]);
        assert!(book.is_empty());
    }

    #[test]
    fn remove_clears_entry() {
        let mut book = AddressBook::new(2);
        book.insert(&peer(1), &addr(1));
        book.remove(&peer(1));
        assert!(!book.contains(&peer(1)));
    }

    #[test]
    fn removed_peer_does_not_shield_survivors() {
        // A removed peer's orphaned queue record must not satisfy an
        // eviction (that would silently under-evict).
        let mut book = AddressBook::new(2);
        book.insert(&peer(1), &addr(1));
        book.insert(&peer(2), &addr(2));
        book.remove(&peer(1));
        book.insert(&peer(3), &addr(3));
        book.insert(&peer(4), &addr(4));
        assert_eq!(book.len(), 2);
        assert!(!book.contains(&peer(2)), "oldest live entry evicted");
        assert!(book.contains(&peer(3)));
        assert!(book.contains(&peer(4)));
    }

    #[test]
    fn full_capacity_churn() {
        let mut book = AddressBook::new(900);
        for i in 0..2000 {
            book.insert(&peer(i), &addr((i % 60_000) as u16));
        }
        assert_eq!(book.len(), 900);
        // The most recent 900 survive.
        assert!(book.contains(&peer(1999)));
        assert!(!book.contains(&peer(0)));
    }

    #[test]
    fn recency_queue_stays_bounded() {
        let mut book = AddressBook::new(8);
        for round in 0..1000u64 {
            book.insert(&peer(round % 8), &addr(1));
            book.lookup(&peer((round + 1) % 8));
        }
        assert!(book.recency.len() <= 4 * 8 + 1, "queue compacts: {}", book.recency.len());
    }
}
