//! The recently-seen address book.
//!
//! Paper §3.2: "each IPFS node maintains an address book of up to 900
//! recently seen peers. Nodes check whether they already have an address
//! for the PeerID they have discovered before performing any further
//! lookups" — a cache that can skip the second DHT walk entirely.

use multiformats::{Multiaddr, PeerId};
use std::collections::HashMap;

/// A bounded LRU map from PeerID to known addresses.
#[derive(Debug, Clone)]
pub struct AddressBook {
    capacity: usize,
    /// Entries with a logical-clock stamp for LRU eviction.
    entries: HashMap<PeerId, (u64, Vec<Multiaddr>)>,
    clock: u64,
    /// Lifetime hit/miss counters.
    pub hits: u64,
    /// Lifetime misses.
    pub misses: u64,
}

impl AddressBook {
    /// Creates a book with the paper's default capacity of 900.
    pub fn new(capacity: usize) -> AddressBook {
        assert!(capacity > 0);
        AddressBook { capacity, entries: HashMap::new(), clock: 0, hits: 0, misses: 0 }
    }

    /// Records addresses for a peer (refreshes recency).
    pub fn insert(&mut self, peer: PeerId, addrs: Vec<Multiaddr>) {
        if addrs.is_empty() {
            return;
        }
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&peer) {
            // Evict the least recently used entry.
            if let Some(oldest) =
                self.entries.iter().min_by_key(|(_, (stamp, _))| *stamp).map(|(p, _)| p.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(peer, (self.clock, addrs));
    }

    /// Looks up addresses, refreshing recency on hit and counting
    /// hit/miss statistics.
    pub fn lookup(&mut self, peer: &PeerId) -> Option<Vec<Multiaddr>> {
        self.clock += 1;
        match self.entries.get_mut(peer) {
            Some((stamp, addrs)) => {
                *stamp = self.clock;
                self.hits += 1;
                Some(addrs.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Non-mutating presence check (no statistics, no recency bump).
    pub fn contains(&self, peer: &PeerId) -> bool {
        self.entries.contains_key(peer)
    }

    /// Drops a peer (e.g. its addresses proved stale).
    pub fn remove(&mut self, peer: &PeerId) {
        self.entries.remove(peer);
    }

    /// Number of peers currently remembered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the book is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for AddressBook {
    fn default() -> Self {
        AddressBook::new(900)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiformats::Keypair;

    fn peer(seed: u64) -> PeerId {
        Keypair::from_seed(seed).peer_id()
    }

    fn addr(port: u16) -> Vec<Multiaddr> {
        vec![format!("/ip4/10.0.0.1/tcp/{port}").parse().unwrap()]
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut book = AddressBook::new(10);
        book.insert(peer(1), addr(1));
        assert_eq!(book.lookup(&peer(1)), Some(addr(1)));
        assert_eq!(book.lookup(&peer(2)), None);
        assert_eq!((book.hits, book.misses), (1, 1));
    }

    #[test]
    fn capacity_is_900_by_default() {
        let book = AddressBook::default();
        assert_eq!(book.capacity, 900);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut book = AddressBook::new(3);
        book.insert(peer(1), addr(1));
        book.insert(peer(2), addr(2));
        book.insert(peer(3), addr(3));
        // Touch 1 so 2 becomes the LRU.
        book.lookup(&peer(1));
        book.insert(peer(4), addr(4));
        assert_eq!(book.len(), 3);
        assert!(book.contains(&peer(1)));
        assert!(!book.contains(&peer(2)), "LRU entry evicted");
        assert!(book.contains(&peer(3)));
        assert!(book.contains(&peer(4)));
    }

    #[test]
    fn reinsert_does_not_grow() {
        let mut book = AddressBook::new(2);
        book.insert(peer(1), addr(1));
        book.insert(peer(1), addr(9));
        assert_eq!(book.len(), 1);
        assert_eq!(book.lookup(&peer(1)), Some(addr(9)));
    }

    #[test]
    fn empty_addresses_ignored() {
        let mut book = AddressBook::new(2);
        book.insert(peer(1), vec![]);
        assert!(book.is_empty());
    }

    #[test]
    fn remove_clears_entry() {
        let mut book = AddressBook::new(2);
        book.insert(peer(1), addr(1));
        book.remove(&peer(1));
        assert!(!book.contains(&peer(1)));
    }

    #[test]
    fn full_capacity_churn() {
        let mut book = AddressBook::new(900);
        for i in 0..2000 {
            book.insert(peer(i), addr((i % 60_000) as u16));
        }
        assert_eq!(book.len(), 900);
        // The most recent 900 survive.
        assert!(book.contains(&peer(1999)));
        assert!(!book.contains(&peer(0)));
    }
}
