//! Windowed time series over simulated time.
//!
//! The paper's §4.1 view (Fig. 4) is longitudinal: activity per time bin
//! across a day of operation. [`TimeSeries`] buckets counter increments
//! and histogram samples into fixed-width windows of simulated time, and
//! can snapshot a [`MetricsRegistry`](super::MetricsRegistry) repeatedly
//! to turn its monotonic counters into per-window deltas.
//!
//! Everything is keyed by `BTreeMap` and merged window-by-window in key
//! order, so building a series from per-cell pieces (one per
//! `run_cells_with_jobs` cell, merged in cell order) produces output
//! byte-identical at any `IPFS_REPRO_JOBS` value.

use super::{pct, MetricsRegistry};
use simnet::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// One window's accumulated data.
#[derive(Debug, Clone, Default, PartialEq)]
struct WindowData {
    counters: BTreeMap<&'static str, u64>,
    samples: BTreeMap<&'static str, Vec<f64>>,
}

/// Counter increments and histogram samples bucketed by fixed-width
/// windows of simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    window: SimDuration,
    windows: BTreeMap<u64, WindowData>,
    snapshot: BTreeMap<&'static str, u64>,
}

impl TimeSeries {
    /// Creates an empty series with the given window width.
    ///
    /// # Panics
    /// If `window` is zero.
    pub fn new(window: SimDuration) -> TimeSeries {
        assert!(window > SimDuration::ZERO, "time-series window must be positive");
        TimeSeries { window, windows: BTreeMap::new(), snapshot: BTreeMap::new() }
    }

    /// The window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// The window index containing `at`.
    pub fn index_of(&self, at: SimTime) -> u64 {
        at.as_nanos() / self.window.as_nanos()
    }

    /// Start of window `idx`, in seconds of simulated time.
    pub fn window_start_secs(&self, idx: u64) -> f64 {
        idx as f64 * self.window.as_secs_f64()
    }

    /// Adds `n` to counter `name` in the window containing `at`.
    pub fn record(&mut self, at: SimTime, name: &'static str, n: u64) {
        let idx = self.index_of(at);
        *self.windows.entry(idx).or_default().counters.entry(name).or_insert(0) += n;
    }

    /// Adds one to counter `name` in the window containing `at`.
    pub fn incr(&mut self, at: SimTime, name: &'static str) {
        self.record(at, name, 1);
    }

    /// Records a histogram sample in the window containing `at`.
    /// Non-finite samples are dropped and counted under
    /// [`names::OBS_SAMPLES_DROPPED`](super::names::OBS_SAMPLES_DROPPED).
    pub fn observe(&mut self, at: SimTime, name: &'static str, sample: f64) {
        if !sample.is_finite() {
            self.record(at, super::names::OBS_SAMPLES_DROPPED, 1);
            return;
        }
        let idx = self.index_of(at);
        self.windows.entry(idx).or_default().samples.entry(name).or_default().push(sample);
    }

    /// Snapshots every counter of `metrics` and books the delta since the
    /// previous snapshot into the window containing `at`. Gauges that
    /// decreased since the last snapshot contribute nothing (deltas
    /// saturate at zero).
    pub fn sample_counters(&mut self, at: SimTime, metrics: &MetricsRegistry) {
        for (name, value) in metrics.counters() {
            let prev = self.snapshot.insert(name, value).unwrap_or(0);
            let delta = value.saturating_sub(prev);
            if delta > 0 {
                self.record(at, name, delta);
            }
        }
    }

    /// Folds another series into this one: counters add, samples append
    /// in `other`'s order. Merging per-cell series in cell index order
    /// yields the same bytes at any job count.
    ///
    /// # Panics
    /// If the window widths differ.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(self.window, other.window, "cannot merge series with different windows");
        for (idx, data) in &other.windows {
            let w = self.windows.entry(*idx).or_default();
            for (name, v) in &data.counters {
                *w.counters.entry(name).or_insert(0) += v;
            }
            for (name, samples) in &data.samples {
                w.samples.entry(name).or_default().extend_from_slice(samples);
            }
        }
    }

    /// Whether the series holds no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Number of non-empty windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Indices of non-empty windows, ascending.
    pub fn window_indices(&self) -> Vec<u64> {
        self.windows.keys().copied().collect()
    }

    /// Counters booked in window `idx`, in name order.
    pub fn counters_in(&self, idx: u64) -> Vec<(&'static str, u64)> {
        self.windows
            .get(&idx)
            .map(|w| w.counters.iter().map(|(k, v)| (*k, *v)).collect())
            .unwrap_or_default()
    }

    /// Samples recorded in window `idx`, in name order.
    pub fn samples_in(&self, idx: u64) -> Vec<(&'static str, &[f64])> {
        self.windows
            .get(&idx)
            .map(|w| w.samples.iter().map(|(k, v)| (*k, v.as_slice())).collect())
            .unwrap_or_default()
    }

    /// Dense per-window values of counter `name` from the first to the
    /// last non-empty window (missing windows yield zero), as
    /// `(window_start_secs, value)` points.
    pub fn counter_series(&self, name: &str) -> Vec<(f64, u64)> {
        let (Some(&lo), Some(&hi)) = (self.windows.keys().next(), self.windows.keys().next_back())
        else {
            return Vec::new();
        };
        (lo..=hi)
            .map(|idx| {
                let v =
                    self.windows.get(&idx).and_then(|w| w.counters.get(name).copied()).unwrap_or(0);
                (self.window_start_secs(idx), v)
            })
            .collect()
    }

    /// Per-window ratio `num / den` for every window where `den > 0`, as
    /// `(window_start_secs, ratio)` points — e.g. a gateway hit rate per
    /// window across an outage.
    pub fn ratio_series(&self, num: &str, den: &str) -> Vec<(f64, f64)> {
        self.windows
            .iter()
            .filter_map(|(idx, w)| {
                let d = w.counters.get(den).copied().unwrap_or(0);
                if d == 0 {
                    return None;
                }
                let n = w.counters.get(num).copied().unwrap_or(0);
                Some((self.window_start_secs(*idx), n as f64 / d as f64))
            })
            .collect()
    }

    /// Serialises the series as a JSON array of window objects, each with
    /// `window_start_secs`, the window's counters, and per-sample-family
    /// summaries (`n`, `mean`, `p50`, `p90`, `p99`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, (idx, w)) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"window_start_secs\":{}", self.window_start_secs(*idx)));
            out.push_str(",\"counters\":{");
            for (j, (name, v)) in w.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{name}\":{v}"));
            }
            out.push_str("},\"samples\":{");
            for (j, (name, samples)) in w.samples.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let mut sorted = samples.clone();
                sorted.sort_by(f64::total_cmp);
                let n = sorted.len();
                let mean = if n == 0 { 0.0 } else { sorted.iter().sum::<f64>() / n as f64 };
                out.push_str(&format!(
                    "\"{name}\":{{\"n\":{n},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                    super::fmt_json_f64(mean),
                    super::fmt_json_f64(pct(&sorted, 0.50)),
                    super::fmt_json_f64(pct(&sorted, 0.90)),
                    super::fmt_json_f64(pct(&sorted, 0.99)),
                ));
            }
            out.push_str("}}");
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::names;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn counters_and_samples_land_in_their_windows() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(60));
        ts.incr(t(5), "reqs");
        ts.incr(t(59), "reqs");
        ts.record(t(61), "reqs", 3);
        ts.observe(t(5), "lat", 1.5);
        ts.observe(t(61), "lat", 2.5);
        assert_eq!(ts.window_indices(), vec![0, 1]);
        assert_eq!(ts.counters_in(0), vec![("reqs", 2)]);
        assert_eq!(ts.counters_in(1), vec![("reqs", 3)]);
        assert_eq!(ts.samples_in(0), vec![("lat", &[1.5][..])]);
        assert_eq!(ts.counter_series("reqs"), vec![(0.0, 2), (60.0, 3)]);
    }

    #[test]
    fn counter_series_fills_gaps_with_zero() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(10));
        ts.incr(t(0), "x");
        ts.incr(t(35), "x");
        let series = ts.counter_series("x");
        assert_eq!(series, vec![(0.0, 1), (10.0, 0), (20.0, 0), (30.0, 1)]);
    }

    #[test]
    fn delta_sampling_books_increments_per_window() {
        let mut m = MetricsRegistry::new();
        let mut ts = TimeSeries::new(SimDuration::from_secs(60));
        m.add("dials_ok", 4);
        ts.sample_counters(t(30), &m);
        m.add("dials_ok", 6);
        ts.sample_counters(t(90), &m);
        // A gauge that decreases contributes nothing.
        m.set("gauge", 10);
        ts.sample_counters(t(100), &m);
        m.set("gauge", 3);
        ts.sample_counters(t(110), &m);
        assert_eq!(ts.counters_in(0), vec![("dials_ok", 4)]);
        assert_eq!(ts.counters_in(1), vec![("dials_ok", 6), ("gauge", 10)]);
    }

    #[test]
    fn ratio_series_skips_empty_denominators() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(60));
        ts.record(t(10), "req", 4);
        ts.record(t(10), "ok", 3);
        ts.record(t(70), "req", 2);
        ts.observe(t(130), "unrelated", 1.0);
        let r = ts.ratio_series("ok", "req");
        assert_eq!(r, vec![(0.0, 0.75), (60.0, 0.0)]);
    }

    #[test]
    fn merge_is_order_independent_for_disjoint_cells_and_json_renders() {
        let mut a = TimeSeries::new(SimDuration::from_secs(60));
        a.incr(t(10), "req");
        a.observe(t(10), "lat", 1.0);
        let mut b = TimeSeries::new(SimDuration::from_secs(60));
        b.record(t(70), "req", 2);
        b.observe(t(70), "lat", 3.0);

        let mut ab = TimeSeries::new(SimDuration::from_secs(60));
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = TimeSeries::new(SimDuration::from_secs(60));
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba, "disjoint-window merges commute");
        assert_eq!(ab.to_json(), ba.to_json());
        let json = ab.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"window_start_secs\":0"));
        assert!(json.contains("\"req\":1"));
        assert!(json.contains("\"n\":1"));
    }

    #[test]
    fn non_finite_samples_are_dropped_and_counted() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(60));
        ts.observe(t(1), "lat", f64::NAN);
        ts.observe(t(1), "lat", f64::INFINITY);
        ts.observe(t(1), "lat", 2.0);
        assert_eq!(ts.samples_in(0), vec![("lat", &[2.0][..])]);
        assert_eq!(ts.counters_in(0), vec![(names::OBS_SAMPLES_DROPPED, 2)]);
    }

    #[test]
    #[should_panic(expected = "different windows")]
    fn merging_mismatched_windows_panics() {
        let mut a = TimeSeries::new(SimDuration::from_secs(60));
        let b = TimeSeries::new(SimDuration::from_secs(30));
        a.merge(&b);
    }
}
