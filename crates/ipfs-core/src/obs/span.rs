//! Span trees, critical-path analysis, and latency attribution.
//!
//! A raw [`OpTrace`] is a flat list of timestamped events; this module
//! folds it into the causal structure the paper's §6.2 decomposition
//! needs:
//!
//! * [`SpanTree`] — op → phase → per-RPC / per-dial spans, rebuilt from
//!   the event stream (phases tile the op interval; RPC and dial spans
//!   nest inside the phase that issued them).
//! * [`SpanTree::critical_path`] — the backward-greedy chain of leaf
//!   spans that bounds the op's latency from below: starting at the op's
//!   end, repeatedly step to the child span that finished last and
//!   recurse into it. The covered time never exceeds the op duration.
//! * [`LatencyBreakdown`] — the §6.2 / Fig. 9b split of one retrieval
//!   into `bitswap_probe → provider_walk → peer_walk → dial → fetch`
//!   (plus `other`), computed so the components **exactly** sum to the
//!   op duration in integer-nanosecond arithmetic.
//!
//! All of this is pure analysis over a collected trace: nothing here
//! touches the simulator, so it can run after the fact on drained traces
//! (see [`super::Tracer::drain_sorted`]).

use super::{OpTrace, TraceEventKind};
use simnet::{SimDuration, SimTime};

/// One node of a span tree: a labelled `[start, end]` interval with
/// child spans nested inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// What the span covers ("retrieve", "provider_walk", "rpc:FIND_NODE",
    /// "dial", ...).
    pub label: String,
    /// When it began.
    pub start: SimTime,
    /// When it ended.
    pub end: SimTime,
    /// Spans causally contained in this one, in start order.
    pub children: Vec<Span>,
}

impl Span {
    /// The span's duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// One hop of a critical path: a leaf interval, clamped so hops never
/// overlap.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalHop {
    /// Label of the leaf span the hop runs through.
    pub label: String,
    /// Hop start.
    pub start: SimTime,
    /// Hop end (clamped to the successor's start).
    pub end: SimTime,
}

impl CriticalHop {
    /// The hop's duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// The causal span tree of one operation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTree {
    /// The op-level span; phases are its children.
    pub root: Span,
}

impl SpanTree {
    /// Folds a trace into a span tree. Returns `None` for an empty trace.
    ///
    /// The op span runs from the first event to `OpFinished` (or the last
    /// event if the op never finished). Each `PhaseEntered` opens a phase
    /// span that closes when the next phase opens or the op ends, so the
    /// phases tile the op interval after the first phase. Within a phase,
    /// `RpcSent` pairs with the first later `RpcOk`/`RpcFailed` for the
    /// same peer, and `DialStarted` pairs with the first later
    /// `DialCompleted`/`DialFailed` for the same peer; unmatched starts
    /// close at the phase end. Child spans are clamped into their parent.
    pub fn from_trace(trace: &OpTrace) -> Option<SpanTree> {
        let events = &trace.events;
        let first = events.first()?;
        let start = first.at;
        let end = events
            .iter()
            .find(|e| matches!(e.kind, TraceEventKind::OpFinished { .. }))
            .map(|e| e.at)
            .unwrap_or_else(|| events.last().map(|e| e.at).unwrap_or(start));
        let label = events
            .iter()
            .find_map(|e| match e.kind {
                TraceEventKind::OpStarted { kind } => Some(kind),
                _ => None,
            })
            .unwrap_or("op");

        // Phase boundaries: (event index, start time, label).
        let bounds: Vec<(usize, SimTime, &'static str)> = events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e.kind {
                TraceEventKind::PhaseEntered { phase } => Some((i, e.at, phase)),
                _ => None,
            })
            .collect();

        let mut phases = Vec::with_capacity(bounds.len());
        for (pi, &(idx, at, phase)) in bounds.iter().enumerate() {
            let (next_idx, phase_end) = match bounds.get(pi + 1) {
                Some(&(ni, na, _)) => (ni, na),
                None => (events.len(), end),
            };
            let phase_end = phase_end.max(at);
            let mut children = Vec::new();
            let mut claimed = vec![false; events.len()];
            for i in idx..next_idx {
                match events[i].kind {
                    TraceEventKind::RpcSent { kind, peer } => {
                        let matched = (i + 1..next_idx).find(|&j| {
                            !claimed[j]
                                && matches!(
                                    events[j].kind,
                                    TraceEventKind::RpcOk { peer: p }
                                    | TraceEventKind::RpcFailed { peer: p } if p == peer
                                )
                        });
                        let child_end = match matched {
                            Some(j) => {
                                claimed[j] = true;
                                events[j].at
                            }
                            None => phase_end,
                        };
                        children.push(clamped_span(
                            format!("rpc:{kind}"),
                            events[i].at,
                            child_end,
                            at,
                            phase_end,
                        ));
                    }
                    TraceEventKind::DialStarted { peer } => {
                        let matched = (i + 1..events.len()).find(|&j| {
                            !claimed[j]
                                && matches!(
                                    events[j].kind,
                                    TraceEventKind::DialCompleted { peer: p }
                                    | TraceEventKind::DialFailed { peer: p, .. } if p == peer
                                )
                        });
                        let child_end = match matched {
                            Some(j) => {
                                claimed[j] = true;
                                events[j].at
                            }
                            None => phase_end,
                        };
                        children.push(clamped_span(
                            "dial".to_string(),
                            events[i].at,
                            child_end,
                            at,
                            phase_end,
                        ));
                    }
                    _ => {}
                }
            }
            phases.push(Span { label: phase.to_string(), start: at, end: phase_end, children });
        }

        Some(SpanTree {
            root: Span { label: label.to_string(), start, end: end.max(start), children: phases },
        })
    }

    /// The op duration (root span duration).
    pub fn duration(&self) -> SimDuration {
        self.root.duration()
    }

    /// Computes the critical path: starting from the op's end, repeatedly
    /// pick the child span that finished last before the cursor, recurse
    /// into it, and move the cursor to its start. Returned hops are in
    /// chronological order, non-overlapping, and clamped into their
    /// parents, so the summed hop time never exceeds the op duration.
    pub fn critical_path(&self) -> Vec<CriticalHop> {
        let mut hops = Vec::new();
        cover(&self.root, self.root.end, &mut hops);
        hops
    }

    /// Total time covered by the critical path (≤ [`Self::duration`]).
    pub fn critical_path_duration(&self) -> SimDuration {
        self.critical_path().iter().fold(SimDuration::ZERO, |acc, h| acc + h.duration())
    }
}

/// Builds a child span clamped into `[parent_start, parent_end]`.
fn clamped_span(
    label: String,
    start: SimTime,
    end: SimTime,
    parent_start: SimTime,
    parent_end: SimTime,
) -> Span {
    let s = start.max(parent_start).min(parent_end);
    let e = end.clamp(s, parent_end);
    Span { label, start: s, end: e, children: Vec::new() }
}

/// Backward-greedy critical-path cover of `span` up to `limit`, appending
/// chronological hops to `out`.
fn cover(span: &Span, limit: SimTime, out: &mut Vec<CriticalHop>) {
    let end = span.end.min(limit);
    if end <= span.start && !span.children.is_empty() {
        return;
    }
    if span.children.is_empty() {
        out.push(CriticalHop { label: span.label.clone(), start: span.start, end });
        return;
    }
    let mut cursor = end;
    let mut picked: Vec<(&Span, SimTime)> = Vec::new();
    loop {
        let next = span
            .children
            .iter()
            .filter(|c| c.start < cursor)
            .max_by_key(|c| (c.end.min(cursor), c.start));
        match next {
            Some(c) => {
                picked.push((c, cursor));
                cursor = c.start;
            }
            None => break,
        }
    }
    for (child, lim) in picked.into_iter().rev() {
        cover(child, lim, out);
    }
}

/// The §6.2 latency decomposition of one operation. All components are
/// disjoint slices of the op interval, so they sum to the op duration
/// exactly (integer nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyBreakdown {
    /// Opportunistic 1 s Bitswap broadcast (§3.2 step 4).
    pub bitswap_probe: SimDuration,
    /// DHT walk for the provider record (also the single `walk` phase of
    /// publish and IPNS ops).
    pub provider_walk: SimDuration,
    /// DHT walk for the provider's peer record.
    pub peer_walk: SimDuration,
    /// Dialing the provider: from `DialStarted` to the connection coming
    /// up (`DialCompleted`); a fetch whose dial failed is attributed here
    /// entirely — the op burned its §6.1 timeout dialing.
    pub dial: SimDuration,
    /// Bitswap content exchange over the established connection.
    pub fetch: SimDuration,
    /// Everything else: pre-phase gap, `rpc_batch`, unknown phases.
    pub other: SimDuration,
}

impl LatencyBreakdown {
    /// Computes the breakdown of a trace. Empty traces yield all zeros.
    pub fn from_trace(trace: &OpTrace) -> LatencyBreakdown {
        let mut bd = LatencyBreakdown::default();
        let Some(first) = trace.events.first() else { return bd };
        let t0 = first.at;
        let end = trace
            .events
            .iter()
            .find(|e| matches!(e.kind, TraceEventKind::OpFinished { .. }))
            .map(|e| e.at)
            .unwrap_or_else(|| trace.events.last().map(|e| e.at).unwrap_or(t0));

        let bounds: Vec<(usize, SimTime, &'static str)> = trace
            .events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e.kind {
                TraceEventKind::PhaseEntered { phase } => Some((i, e.at, phase)),
                _ => None,
            })
            .collect();
        if bounds.is_empty() {
            bd.other = end.since(t0);
            return bd;
        }
        bd.other += bounds[0].1.since(t0);
        for (pi, &(idx, at, phase)) in bounds.iter().enumerate() {
            let (next_idx, seg_end) = match bounds.get(pi + 1) {
                Some(&(ni, na, _)) => (ni, na),
                None => (trace.events.len(), end),
            };
            let seg_end = seg_end.max(at);
            let seg = seg_end.since(at);
            match phase {
                "bitswap_probe" => bd.bitswap_probe += seg,
                "provider_walk" | "walk" => bd.provider_walk += seg,
                "peer_walk" => bd.peer_walk += seg,
                "fetch" => {
                    // Split the fetch phase at the instant the provider
                    // connection came up; a failed dial burns the whole
                    // segment dialing.
                    let window = &trace.events[idx..next_idx];
                    let connected = window
                        .iter()
                        .find(|e| matches!(e.kind, TraceEventKind::DialCompleted { .. }))
                        .map(|e| e.at.clamp(at, seg_end));
                    let failed =
                        window.iter().any(|e| matches!(e.kind, TraceEventKind::DialFailed { .. }));
                    match connected {
                        Some(tc) => {
                            bd.dial += tc.since(at);
                            bd.fetch += seg_end.since(tc);
                        }
                        None if failed => bd.dial += seg,
                        None => bd.fetch += seg,
                    }
                }
                _ => bd.other += seg,
            }
        }
        bd
    }

    /// Sum of all components — exactly the op duration.
    pub fn total(&self) -> SimDuration {
        self.bitswap_probe
            + self.provider_walk
            + self.peer_walk
            + self.dial
            + self.fetch
            + self.other
    }

    /// The components as `(label, duration)` pairs, pipeline order.
    pub fn components(&self) -> [(&'static str, SimDuration); 6] {
        [
            ("bitswap_probe", self.bitswap_probe),
            ("provider_walk", self.provider_walk),
            ("peer_walk", self.peer_walk),
            ("dial", self.dial),
            ("fetch", self.fetch),
            ("other", self.other),
        ]
    }

    /// Combined DHT-walk time (provider + peer walk) — the component the
    /// paper finds dominant (§6.2).
    pub fn dht_walk(&self) -> SimDuration {
        self.provider_walk + self.peer_walk
    }

    /// The largest component, `(label, duration)`; ties break toward the
    /// earlier pipeline stage.
    pub fn dominant(&self) -> (&'static str, SimDuration) {
        let mut best = ("bitswap_probe", self.bitswap_probe);
        for (label, d) in self.components() {
            if d > best.1 {
                best = (label, d);
            }
        }
        best
    }

    /// Serialises the breakdown as a JSON object of `<component>_us`
    /// fields (microseconds of simulated time).
    pub fn to_json(&self) -> String {
        let fields: Vec<String> = self
            .components()
            .iter()
            .map(|(label, d)| format!("\"{label}_us\":{}", d.as_nanos() / 1_000))
            .collect();
        format!("{{{},\"total_us\":{}}}", fields.join(","), self.total().as_nanos() / 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::TraceEvent;
    use proptest::prelude::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn ev(ms: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { at: at(ms), kind }
    }

    /// A hand-built §3.2 retrieval trace:
    /// probe 1000 ms → provider walk 400 ms (2 RPCs) → peer walk 300 ms →
    /// fetch phase 500 ms split as dial 120 ms + transfer 380 ms.
    fn retrieval_trace() -> OpTrace {
        OpTrace {
            events: vec![
                ev(0, TraceEventKind::OpStarted { kind: "retrieve" }),
                ev(0, TraceEventKind::PhaseEntered { phase: "bitswap_probe" }),
                ev(1000, TraceEventKind::PhaseEntered { phase: "provider_walk" }),
                ev(1000, TraceEventKind::RpcSent { kind: "GET_PROVIDERS", peer: 4 }),
                ev(1150, TraceEventKind::RpcOk { peer: 4 }),
                ev(1150, TraceEventKind::RpcSent { kind: "GET_PROVIDERS", peer: 9 }),
                ev(1400, TraceEventKind::RpcOk { peer: 9 }),
                ev(1400, TraceEventKind::PhaseEntered { phase: "peer_walk" }),
                ev(1450, TraceEventKind::RpcSent { kind: "FIND_NODE", peer: 2 }),
                ev(1700, TraceEventKind::RpcFailed { peer: 2 }),
                ev(1700, TraceEventKind::PhaseEntered { phase: "fetch" }),
                ev(1700, TraceEventKind::DialStarted { peer: 7 }),
                ev(1820, TraceEventKind::DialCompleted { peer: 7 }),
                ev(2200, TraceEventKind::OpFinished { success: true }),
            ],
        }
    }

    #[test]
    fn span_tree_reconstructs_the_pipeline() {
        let tree = SpanTree::from_trace(&retrieval_trace()).unwrap();
        assert_eq!(tree.root.label, "retrieve");
        assert_eq!(tree.duration(), SimDuration::from_millis(2200));
        let labels: Vec<&str> = tree.root.children.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, vec!["bitswap_probe", "provider_walk", "peer_walk", "fetch"]);
        // Phases tile the op interval.
        for pair in tree.root.children.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        let walk = &tree.root.children[1];
        assert_eq!(walk.children.len(), 2, "two RPC spans: {walk:?}");
        assert_eq!(walk.children[0].duration(), SimDuration::from_millis(150));
        assert_eq!(walk.children[1].duration(), SimDuration::from_millis(250));
        let fetch = &tree.root.children[3];
        assert_eq!(fetch.children.len(), 1);
        assert_eq!(fetch.children[0].label, "dial");
        assert_eq!(fetch.children[0].duration(), SimDuration::from_millis(120));
    }

    #[test]
    fn breakdown_matches_the_pipeline_and_sums_exactly() {
        let bd = LatencyBreakdown::from_trace(&retrieval_trace());
        assert_eq!(bd.bitswap_probe, SimDuration::from_millis(1000));
        assert_eq!(bd.provider_walk, SimDuration::from_millis(400));
        assert_eq!(bd.peer_walk, SimDuration::from_millis(300));
        assert_eq!(bd.dial, SimDuration::from_millis(120));
        assert_eq!(bd.fetch, SimDuration::from_millis(380));
        assert_eq!(bd.other, SimDuration::ZERO);
        assert_eq!(bd.total(), SimDuration::from_millis(2200));
        assert_eq!(bd.dominant().0, "bitswap_probe");
        assert!(bd.to_json().contains("\"provider_walk_us\":400000"));
    }

    #[test]
    fn failed_dial_attributes_the_fetch_phase_to_dial() {
        let trace = OpTrace {
            events: vec![
                ev(0, TraceEventKind::OpStarted { kind: "retrieve" }),
                ev(0, TraceEventKind::PhaseEntered { phase: "fetch" }),
                ev(0, TraceEventKind::DialStarted { peer: 3 }),
                ev(0, TraceEventKind::DialFailed { peer: 3, class: crate::DialClass::Timeout5s }),
                ev(5000, TraceEventKind::OpFinished { success: false }),
            ],
        };
        let bd = LatencyBreakdown::from_trace(&trace);
        assert_eq!(bd.dial, SimDuration::from_secs(5));
        assert_eq!(bd.fetch, SimDuration::ZERO);
        assert_eq!(bd.total(), SimDuration::from_secs(5));
    }

    #[test]
    fn empty_and_phaseless_traces_are_safe() {
        assert!(SpanTree::from_trace(&OpTrace::default()).is_none());
        assert_eq!(LatencyBreakdown::from_trace(&OpTrace::default()), LatencyBreakdown::default());
        let trace = OpTrace {
            events: vec![
                ev(5, TraceEventKind::OpStarted { kind: "retrieve" }),
                ev(42, TraceEventKind::OpFinished { success: false }),
            ],
        };
        let bd = LatencyBreakdown::from_trace(&trace);
        assert_eq!(bd.other, SimDuration::from_millis(37));
        assert_eq!(bd.total(), SimDuration::from_millis(37));
        let tree = SpanTree::from_trace(&trace).unwrap();
        assert_eq!(tree.duration(), SimDuration::from_millis(37));
        assert_eq!(tree.critical_path_duration(), tree.duration());
    }

    #[test]
    fn critical_path_walks_the_latest_finishers() {
        let tree = SpanTree::from_trace(&retrieval_trace()).unwrap();
        let path = tree.critical_path();
        let labels: Vec<&str> = path.iter().map(|h| h.label.as_str()).collect();
        // Inside provider_walk the second RPC finishes at the phase end;
        // inside peer_walk the (failed) FIND_NODE does; inside fetch no
        // child reaches the end, so the dial is the last finisher.
        assert_eq!(
            labels,
            vec![
                "bitswap_probe",
                "rpc:GET_PROVIDERS",
                "rpc:GET_PROVIDERS",
                "rpc:FIND_NODE",
                "dial"
            ]
        );
        assert!(tree.critical_path_duration() <= tree.duration());
        for pair in path.windows(2) {
            assert!(pair[0].end <= pair[1].start, "hops must not overlap: {path:?}");
        }
    }

    /// Recursively asserts children nest within their parent and are
    /// clamped to it.
    fn assert_nested(span: &Span) {
        for c in &span.children {
            assert!(c.start >= span.start && c.end <= span.end, "child escapes parent: {span:?}");
            assert!(c.start <= c.end);
            assert_nested(c);
        }
    }

    /// Builds a synthetic retrieval trace from generated durations (ms)
    /// and per-walk RPC offsets, returning the trace and its exact end.
    #[allow(clippy::type_complexity)]
    fn synth_trace(
        probe_ms: u64,
        walk_ms: u64,
        peer_ms: u64,
        dial_ms: u64,
        transfer_ms: u64,
        rpcs: &[(u64, u64)],
    ) -> OpTrace {
        let mut events = vec![
            ev(0, TraceEventKind::OpStarted { kind: "retrieve" }),
            ev(0, TraceEventKind::PhaseEntered { phase: "bitswap_probe" }),
            ev(probe_ms, TraceEventKind::PhaseEntered { phase: "provider_walk" }),
        ];
        let walk_end = probe_ms + walk_ms;
        for (i, &(off, dur)) in rpcs.iter().enumerate() {
            let s = probe_ms + off % walk_ms.max(1);
            let e = (s + dur).min(walk_end);
            events.push(ev(s, TraceEventKind::RpcSent { kind: "GET_PROVIDERS", peer: i }));
            events.push(ev(e, TraceEventKind::RpcOk { peer: i }));
        }
        // RPC replies may land after the next phase starts; keep the
        // event list time-sorted as the tracer would have recorded it.
        events.sort_by_key(|e| e.at);
        let peer_end = walk_end + peer_ms;
        let fetch_end = peer_end + dial_ms + transfer_ms;
        events.push(ev(walk_end, TraceEventKind::PhaseEntered { phase: "peer_walk" }));
        events.push(ev(peer_end, TraceEventKind::PhaseEntered { phase: "fetch" }));
        events.push(ev(peer_end, TraceEventKind::DialStarted { peer: 99 }));
        events.push(ev(peer_end + dial_ms, TraceEventKind::DialCompleted { peer: 99 }));
        events.push(ev(fetch_end, TraceEventKind::OpFinished { success: true }));
        OpTrace { events }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn spans_nest_breakdown_sums_and_critical_path_is_bounded(
            probe_ms in 1u64..3_000,
            walk_ms in 1u64..60_000,
            peer_ms in 0u64..30_000,
            dial_ms in 0u64..5_000,
            transfer_ms in 1u64..30_000,
            rpcs in proptest::collection::vec((0u64..60_000, 1u64..10_000), 0..12),
        ) {
            let trace = synth_trace(probe_ms, walk_ms, peer_ms, dial_ms, transfer_ms, &rpcs);
            let total = SimDuration::from_millis(
                probe_ms + walk_ms + peer_ms + dial_ms + transfer_ms,
            );

            // (a) child spans nest within their parents.
            let tree = SpanTree::from_trace(&trace).unwrap();
            assert_nested(&tree.root);

            // (b) breakdown components sum exactly to the op duration.
            let bd = LatencyBreakdown::from_trace(&trace);
            prop_assert_eq!(bd.total(), total);
            prop_assert_eq!(bd.total(), tree.duration());
            prop_assert_eq!(bd.bitswap_probe, SimDuration::from_millis(probe_ms));
            prop_assert_eq!(bd.dial, SimDuration::from_millis(dial_ms));

            // (c) the critical path never exceeds the op duration, and
            // its hops are chronological and disjoint.
            let path = tree.critical_path();
            prop_assert!(tree.critical_path_duration() <= tree.duration());
            for pair in path.windows(2) {
                prop_assert!(pair[0].end <= pair[1].start);
            }
        }
    }
}
