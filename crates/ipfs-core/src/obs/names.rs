//! Canonical metric names.
//!
//! Every counter and histogram the simulation stack emits is named here,
//! once, as a `&'static str` constant. Call sites reference the constant
//! instead of a string literal, so a typo'd name cannot silently split a
//! metric family into two — the compiler catches it. [`ALL`] lists every
//! name for the uniqueness/style test and for bulk export.

macro_rules! metric_names {
    ($($(#[$meta:meta])* $ident:ident = $value:literal;)+) => {
        $($(#[$meta])* pub const $ident: &str = $value;)+
        /// Every metric name defined in this module.
        pub const ALL: &[&str] = &[$($value),+];
    };
}

metric_names! {
    // -- DHT RPC volume by type (§3.1) --------------------------------
    /// Outbound FIND_NODE RPCs.
    DHT_RPC_SENT_FIND_NODE = "dht_rpc_sent_find_node";
    /// Outbound GET_PROVIDERS RPCs.
    DHT_RPC_SENT_GET_PROVIDERS = "dht_rpc_sent_get_providers";
    /// Outbound ADD_PROVIDER RPCs.
    DHT_RPC_SENT_ADD_PROVIDER = "dht_rpc_sent_add_provider";
    /// Outbound batched ADD_PROVIDER RPCs (reprovide sweep).
    DHT_RPC_SENT_ADD_PROVIDER_BATCH = "dht_rpc_sent_add_provider_batch";
    /// Outbound PUT (peer record) RPCs.
    DHT_RPC_SENT_PUT_PEER_RECORD = "dht_rpc_sent_put_peer_record";
    /// Outbound PUT (IPNS value) RPCs.
    DHT_RPC_SENT_PUT_VALUE = "dht_rpc_sent_put_value";
    /// Outbound GET (IPNS value) RPCs.
    DHT_RPC_SENT_GET_VALUE = "dht_rpc_sent_get_value";
    /// Inbound FIND_NODE RPCs.
    DHT_RPC_RECV_FIND_NODE = "dht_rpc_recv_find_node";
    /// Inbound GET_PROVIDERS RPCs.
    DHT_RPC_RECV_GET_PROVIDERS = "dht_rpc_recv_get_providers";
    /// Inbound ADD_PROVIDER RPCs.
    DHT_RPC_RECV_ADD_PROVIDER = "dht_rpc_recv_add_provider";
    /// Inbound batched ADD_PROVIDER RPCs (reprovide sweep).
    DHT_RPC_RECV_ADD_PROVIDER_BATCH = "dht_rpc_recv_add_provider_batch";
    /// Inbound PUT (peer record) RPCs.
    DHT_RPC_RECV_PUT_PEER_RECORD = "dht_rpc_recv_put_peer_record";
    /// Inbound PUT (IPNS value) RPCs.
    DHT_RPC_RECV_PUT_VALUE = "dht_rpc_recv_put_value";
    /// Inbound GET (IPNS value) RPCs.
    DHT_RPC_RECV_GET_VALUE = "dht_rpc_recv_get_value";
    /// DHT RPCs answered in time.
    DHT_RPC_OK = "dht_rpc_ok";
    /// DHT RPCs that failed (unreachable peer / dial timeout).
    DHT_RPC_FAILED = "dht_rpc_failed";
    /// Histogram: RPCs issued per DHT walk.
    DHT_WALK_RPCS = "dht_walk_rpcs";

    // -- Dials and the §6.1 timeout split -----------------------------
    /// Dials attempted.
    DIALS_ATTEMPTED = "dials_attempted";
    /// Dials that produced a connection.
    DIALS_OK = "dials_ok";
    /// Dials satisfied by an existing warm connection.
    DIALS_WARM = "dials_warm";
    /// Dials that failed (all classes).
    DIALS_FAILED = "dials_failed";
    /// Failed dials: immediate connection-refused.
    DIAL_FAILED_FAST_REFUSE = "dial_failed_fast_refuse";
    /// Failed dials: 5 s TCP/QUIC timeout.
    DIAL_FAILED_TIMEOUT_5S = "dial_failed_timeout_5s";
    /// Failed dials: 45 s WebSocket timeout.
    DIAL_FAILED_TIMEOUT_45S = "dial_failed_timeout_45s";

    // -- Bitswap message volume by type (§3.2) ------------------------
    /// Outbound WANT-HAVE messages.
    BITSWAP_SENT_WANT_HAVE = "bitswap_sent_want_have";
    /// Outbound HAVE messages.
    BITSWAP_SENT_HAVE = "bitswap_sent_have";
    /// Outbound DONT-HAVE messages.
    BITSWAP_SENT_DONT_HAVE = "bitswap_sent_dont_have";
    /// Outbound WANT-BLOCK messages.
    BITSWAP_SENT_WANT_BLOCK = "bitswap_sent_want_block";
    /// Outbound BLOCK messages.
    BITSWAP_SENT_BLOCK = "bitswap_sent_block";
    /// Outbound CANCEL messages.
    BITSWAP_SENT_CANCEL = "bitswap_sent_cancel";
    /// Delivered WANT-HAVE messages.
    BITSWAP_RECV_WANT_HAVE = "bitswap_recv_want_have";
    /// Delivered HAVE messages.
    BITSWAP_RECV_HAVE = "bitswap_recv_have";
    /// Delivered DONT-HAVE messages.
    BITSWAP_RECV_DONT_HAVE = "bitswap_recv_dont_have";
    /// Delivered WANT-BLOCK messages.
    BITSWAP_RECV_WANT_BLOCK = "bitswap_recv_want_block";
    /// Delivered BLOCK messages.
    BITSWAP_RECV_BLOCK = "bitswap_recv_block";
    /// Delivered CANCEL messages.
    BITSWAP_RECV_CANCEL = "bitswap_recv_cancel";
    /// Blocks verified and stored by a Bitswap session.
    BITSWAP_BLOCKS_STORED = "bitswap_blocks_stored";
    /// Opportunistic 1 s probes that expired without the content.
    BITSWAP_PROBE_TIMEOUTS = "bitswap_probe_timeouts";

    // -- Bitswap session layer (swarm transfer) -----------------------
    /// Blocks received and verified by client sessions.
    BITSWAP_SESSION_BLOCKS_RECEIVED = "bitswap_session_blocks_received";
    /// Duplicate blocks received by client sessions (duplicate-factor
    /// races, re-routed wants whose original target delivered late).
    BITSWAP_SESSION_DUP_BLOCKS = "bitswap_session_duplicate_blocks";
    /// WANT-BLOCK requests issued by client sessions.
    BITSWAP_SESSION_WANTS_SENT = "bitswap_session_wants_sent";
    /// Wants re-queued to another peer after a renege or crash.
    BITSWAP_SESSION_REROUTES = "bitswap_session_reroutes";
    /// Per-peer WANT-BLOCK→BLOCK response latency (ms), drained from
    /// sessions at retrieval completion.
    BITSWAP_PEER_LATENCY_MS = "bitswap_peer_latency_ms";

    // -- Operations ---------------------------------------------------
    /// Publish operations submitted.
    PUBLISH_OPS = "publish_ops";
    /// Publish operations that succeeded.
    PUBLISH_SUCCESS = "publish_success";
    /// Publish operations that failed.
    PUBLISH_FAILED = "publish_failed";
    /// Retrieve operations submitted.
    RETRIEVE_OPS = "retrieve_ops";
    /// Retrieve operations that succeeded.
    RETRIEVE_SUCCESS = "retrieve_success";
    /// Retrieve operations that failed.
    RETRIEVE_FAILED = "retrieve_failed";
    /// Retrievals satisfied by the opportunistic Bitswap probe.
    RETRIEVE_VIA_BITSWAP = "retrieve_via_bitswap";
    /// IPNS publish operations submitted.
    IPNS_PUBLISH_OPS = "ipns_publish_ops";
    /// IPNS publish operations that succeeded.
    IPNS_PUBLISH_SUCCESS = "ipns_publish_success";
    /// IPNS publish operations that failed.
    IPNS_PUBLISH_FAILED = "ipns_publish_failed";
    /// IPNS resolve operations submitted.
    IPNS_RESOLVE_OPS = "ipns_resolve_ops";
    /// IPNS resolve operations that succeeded.
    IPNS_RESOLVE_SUCCESS = "ipns_resolve_success";
    /// IPNS resolve operations that failed.
    IPNS_RESOLVE_FAILED = "ipns_resolve_failed";
    /// IPNS records accepted into node stores.
    IPNS_RECORDS_STORED = "ipns_records_stored";

    // -- Provider records, connections, churn -------------------------
    /// Provider records accepted into node stores (§3.1 replication).
    PROVIDER_RECORDS_STORED = "provider_records_stored";
    /// Provider records dropped at expiry.
    PROVIDER_RECORDS_EXPIRED = "provider_records_expired";
    /// Provider-record republish rounds.
    PROVIDER_REPUBLISHES = "provider_republishes";
    /// Republish chains parked because the provider went offline.
    PROVIDER_REPUBLISH_DEFERRED = "provider_republish_deferred";
    /// Parked republish chains resumed when the provider rejoined.
    PROVIDER_REPUBLISH_RESUMED = "provider_republish_resumed";
    /// Reprovide sweeps executed (one per node per republish interval).
    PROVIDER_SWEEP_RUNS = "provider_sweep_runs";
    /// Keyspace batches walked by reprovide sweeps (one FIND_NODE walk
    /// amortized over every CID in the batch).
    PROVIDER_SWEEP_BATCHES = "provider_sweep_batches";
    /// CIDs reannounced by reprovide sweeps.
    PROVIDER_SWEEP_CIDS = "provider_sweep_cids";
    /// Sweep batches whose closest-peer walk failed (records miss one
    /// refresh round and retry at the next sweep).
    PROVIDER_SWEEP_BATCH_FAILED = "provider_sweep_batch_failed";
    /// Peer walks short-circuited by the address book (§3.2).
    ADDR_BOOK_HITS = "addr_book_hits";
    /// Connections closed by the connection-manager high-water prune.
    CONN_PRUNES = "conn_prunes";
    /// Connections closed by the idle timeout.
    CONN_IDLE_EXPIRED = "conn_idle_expired";
    /// Churn transitions to online.
    CHURN_ONLINE = "churn_online";
    /// Churn transitions to offline.
    CHURN_OFFLINE = "churn_offline";

    // -- Fault injection (`faultsim`) ---------------------------------
    /// Partitions started by the fault plan.
    FAULT_PARTITION_STARTS = "fault_partition_starts";
    /// Partitions healed.
    FAULT_PARTITION_HEALS = "fault_partition_heals";
    /// Link-degradation windows started.
    FAULT_DEGRADE_STARTS = "fault_degrade_starts";
    /// Link-degradation windows ended.
    FAULT_DEGRADE_ENDS = "fault_degrade_ends";
    /// Dial-failure spikes started.
    FAULT_DIAL_SPIKE_STARTS = "fault_dial_spike_starts";
    /// Dial-failure spikes ended.
    FAULT_DIAL_SPIKE_ENDS = "fault_dial_spike_ends";
    /// Crash waves executed.
    FAULT_CRASH_WAVES = "fault_crash_waves";
    /// Gauge: partitions currently active.
    FAULT_PARTITIONS_ACTIVE = "fault_partitions_active";
    /// Warm connections severed by a new partition.
    FAULT_CONNS_SEVERED = "fault_conns_severed";
    /// Dials refused by the partition oracle.
    FAULT_DIALS_BLOCKED = "fault_dials_blocked";
    /// Dials failed by an active dial-failure spike.
    FAULT_DIALS_SPIKED = "fault_dials_spiked";
    /// In-flight messages dropped at a partition cut.
    FAULT_MESSAGES_CUT = "fault_messages_cut";
    /// Messages lost to degraded-link loss.
    FAULT_MESSAGES_LOST = "fault_messages_lost";
    /// Nodes taken down by crash waves.
    FAULT_NODES_CRASHED = "fault_nodes_crashed";
    /// Histogram: seconds from heal to first successful retrieval.
    FAULT_RECOVERY_SECS = "fault_recovery_secs";

    // -- Gateway cache tiers (§6.3) -----------------------------------
    /// Requests served from the nginx cache.
    GATEWAY_NGINX_HITS = "gateway_nginx_hits";
    /// Requests that missed the nginx cache.
    GATEWAY_NGINX_MISSES = "gateway_nginx_misses";
    /// Requests served from the gateway node's blockstore.
    GATEWAY_NODE_STORE_HITS = "gateway_node_store_hits";
    /// Requests that went to the network.
    GATEWAY_NETWORK_FETCHES = "gateway_network_fetches";
    /// Network fetches that failed.
    GATEWAY_NETWORK_FAILURES = "gateway_network_failures";
    /// nginx cache evictions (incremental deltas, safe to merge).
    GATEWAY_NGINX_EVICTIONS = "gateway_nginx_evictions";
    /// Requests coalesced onto an in-flight retrieval (singleflight).
    GATEWAY_SINGLEFLIGHT_WAITERS = "gateway_singleflight_waiters";
    /// Requests answered from the negative cache (known-failed CIDs).
    GATEWAY_NEGATIVE_HITS = "gateway_negative_cache_hits";
    /// Failed retrievals recorded into the negative cache.
    GATEWAY_NEGATIVE_INSERTS = "gateway_negative_cache_inserts";
    /// Responses the TinyLFU admission filter kept out of the nginx tier.
    GATEWAY_ADMISSION_REJECTS = "gateway_admission_rejects";
    /// Requests re-routed to another gateway because the preferred
    /// instance was unhealthy (fleet failover).
    GATEWAY_FLEET_FAILOVERS = "gateway_fleet_failovers";
    /// Time-series key: gateway requests per window.
    GATEWAY_REQUESTS = "gateway_requests";
    /// Time-series key: successfully served gateway requests per window.
    GATEWAY_OK = "gateway_ok";
    /// Time-series histogram: upstream response latency per request, ms.
    GATEWAY_LATENCY_MS = "gateway_latency_ms";

    // -- Crawler/monitor (§4.1) ---------------------------------------
    /// Liveness probes issued by the monitor.
    MONITOR_PROBES = "monitor_probes";
    /// Liveness probes that found the peer up.
    MONITOR_PROBES_UP = "monitor_probes_up";
    /// Peer sessions observed by the monitor.
    MONITOR_SESSIONS_OBSERVED = "monitor_sessions_observed";
    /// Histogram: observed uptime seconds per session.
    MONITOR_OBSERVED_UPTIME_SECS = "monitor_observed_uptime_secs";

    // -- Observability self-metering ----------------------------------
    /// Non-finite histogram samples rejected at intake.
    OBS_SAMPLES_DROPPED = "obs_samples_dropped";
}

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(seen.insert(name), "duplicate metric name: {name}");
        }
    }

    #[test]
    fn names_are_snake_case() {
        for name in ALL {
            assert!(!name.is_empty());
            assert!(
                name.chars().next().unwrap().is_ascii_lowercase(),
                "metric name must start with a lowercase letter: {name}"
            );
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "metric name must be snake_case [a-z0-9_]: {name}"
            );
            assert!(!name.contains("__"), "no doubled underscores: {name}");
            assert!(!name.ends_with('_'), "no trailing underscore: {name}");
        }
    }
}
