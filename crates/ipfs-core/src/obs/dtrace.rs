//! Cross-node causal tracing and the crash flight recorder.
//!
//! The per-op [`super::Tracer`] only sees what the *requesting* node
//! observes: a remote peer's handler time, uplink queueing, or mid-fetch
//! re-routing collapses into an opaque RPC or fetch span. This module adds
//! the distributed half:
//!
//! * [`TraceCtx`] — a 16-byte `(trace_id, parent_span)` pair carried on
//!   simulated messages (kademlia RPCs, Bitswap WANT/BLOCK traffic). Both
//!   ids are **derived deterministically** from the operation's
//!   `(origin node, op sequence)` — never from randomness — so any two
//!   runs of the same seed produce the same ids at any worker/shard
//!   count.
//! * [`SpanFragment`] — a fixed-size, `Copy`, allocation-free record of
//!   one remote-side span (server handler time, BLOCK serve with uplink
//!   queue wait, a re-routed want, a gateway serve tier), written by the
//!   node where the work happened.
//! * [`DtraceSink`] — per-node storage: a bounded [`FlightRing`] of the
//!   most recent fragments (always on, one fixed buffer per active node)
//!   plus an unbounded collection vector used for stitching when
//!   [`DtraceConfig::collect`] is set.
//! * [`stitch`] — joins the requester's [`OpTrace`] with every fragment
//!   of the op's trace id into one distributed
//!   [`SpanTree`](super::span::SpanTree). Stitching sorts fragments by a
//!   total order first, so the result is byte-identical regardless of the
//!   order fragments were gathered in (shards, job counts, shuffles).
//! * [`render_postmortem`] — the flight-recorder dump: the causal trail
//!   of one op across every node that touched it, rendered when the op
//!   fails, breaches a deadline, or saw a mid-fetch re-route.
//!
//! Span-id scheme (all through [`span_id`], a splitmix64 mix):
//!
//! | id                      | derivation                                |
//! |-------------------------|-------------------------------------------|
//! | `trace_id`              | mix(origin node, op sequence), nonzero    |
//! | root span               | `span_id(tid, ROOT, 0)`                   |
//! | phase span              | `span_id(tid, PHASE, fnv(label))`         |
//! | requester RPC span      | `span_id(tid, RPC, nth RpcSent of op)`    |
//! | requester dial span     | `span_id(tid, DIAL, nth DialStarted)`     |
//! | remote fragment         | `span_id(tid, FRAGMENT, node«32 | seq)`   |
//!
//! The requester side of the scheme is reconstructible from the op's
//! trace alone (the stitcher counts `RpcSent` events the same way the
//! sender numbered them), so no id ever needs to travel backwards.

use super::span::{Span, SpanTree};
use super::{OpTrace, TraceEventKind};
use crate::ops::OpId;
use simnet::{SimDuration, SimTime};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Sentinel for "no counterpart node" in [`SpanFragment::peer`].
pub const NO_PEER: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Deterministic ids
// ---------------------------------------------------------------------------

/// splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a label, for phase-span derivation.
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Span-id domains, so ids from different derivations can never collide
/// structurally.
pub mod domain {
    /// The op's root span.
    pub const ROOT: u64 = 1;
    /// A pipeline-phase span (keyed by the phase label).
    pub const PHASE: u64 = 2;
    /// A requester-side RPC span (keyed by per-op send index).
    pub const RPC: u64 = 3;
    /// A remote-side fragment (keyed by recording node and sequence).
    pub const FRAGMENT: u64 = 4;
    /// A requester-side dial span (keyed by per-op dial index).
    pub const DIAL: u64 = 5;
}

/// The op's deterministic trace id: mixed from `(origin node, op
/// sequence)`, never zero (zero means "no trace").
pub fn trace_id(node: usize, op: OpId) -> u64 {
    mix(((node as u64 + 1) << 32) ^ op.0.wrapping_add(1)) | 1
}

/// Derives a span id inside `tid` from a domain and a qualifier. Never
/// zero.
pub fn span_id(tid: u64, domain: u64, q: u64) -> u64 {
    mix(tid ^ domain.rotate_left(56) ^ mix(q)) | 1
}

/// The root span id of a trace.
pub fn root_span(tid: u64) -> u64 {
    span_id(tid, domain::ROOT, 0)
}

/// The span id of the phase named `label` within a trace.
pub fn phase_span(tid: u64, label: &str) -> u64 {
    span_id(tid, domain::PHASE, fnv(label))
}

/// The span id of the requester's `seq`-th `RpcSent` (0-based, counted
/// over the whole op in event order).
pub fn rpc_span(tid: u64, seq: u32) -> u64 {
    span_id(tid, domain::RPC, seq as u64)
}

/// The span id of a remote fragment recorded by `node` with per-node
/// sequence `seq`.
pub fn fragment_span(tid: u64, node: usize, seq: u32) -> u64 {
    span_id(tid, domain::FRAGMENT, ((node as u64) << 32) | seq as u64)
}

// ---------------------------------------------------------------------------
// Trace context carried on messages
// ---------------------------------------------------------------------------

/// The causal context a simulated message carries: which trace it belongs
/// to and which span on the sender caused it. 16 bytes, `Copy`, and
/// all-zero when tracing is off — carrying it costs nothing beyond the
/// event's size budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// The op's trace id ([`trace_id`]); zero when untraced.
    pub trace_id: u64,
    /// The sender-side span this message is causally part of.
    pub parent_span: u64,
}

impl TraceCtx {
    /// The untraced context.
    pub const NONE: TraceCtx = TraceCtx { trace_id: 0, parent_span: 0 };

    /// Whether this context carries no trace.
    pub fn is_none(self) -> bool {
        self.trace_id == 0
    }
}

// ---------------------------------------------------------------------------
// Span fragments and the flight recorder
// ---------------------------------------------------------------------------

/// One remote-side span, recorded by the node where the work happened.
/// Fixed-size and `Copy`: labels are `&'static str`, identities are
/// numeric, details ride in two untyped `u64`s interpreted per label —
/// recording one never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanFragment {
    /// Trace this fragment belongs to (zero = untraced ring-only entry).
    pub trace_id: u64,
    /// This fragment's own span id ([`fragment_span`]).
    pub span_id: u64,
    /// The sender-side span that caused the work (from the message's
    /// [`TraceCtx`]).
    pub parent: u64,
    /// Node that recorded the fragment.
    pub node: u32,
    /// Counterpart node ([`NO_PEER`] if not applicable).
    pub peer: u32,
    /// Fragment family ("srv", "bs", "gw").
    pub label: &'static str,
    /// Fragment kind within the family ("FIND_NODE", "block_serve",
    /// "reroute", ...).
    pub detail: &'static str,
    /// First detail word (per label: closer-peer count, payload bytes,
    /// low 64 bits of the want's DHT key, ...).
    pub a: u64,
    /// Second detail word (per label: queue-wait nanoseconds, the lost
    /// peer's node id, ...).
    pub b: u64,
    /// Span start.
    pub start: SimTime,
    /// Span end.
    pub end: SimTime,
    /// Per-node record sequence (monotonic, used for tie-breaking).
    pub seq: u32,
}

impl SpanFragment {
    /// Stitched-tree label: `family:kind@n<node>`, e.g.
    /// `srv:FIND_NODE@n12` or `bs:block_serve@n7`.
    pub fn span_label(&self) -> String {
        if self.detail.is_empty() {
            format!("{}@n{}", self.label, self.node)
        } else {
            format!("{}:{}@n{}", self.label, self.detail, self.node)
        }
    }
}

/// A bounded ring of the most recent [`SpanFragment`]s one node recorded.
/// The buffer is allocated once (at the configured capacity) on the
/// node's first record and then overwritten in place, so steady-state
/// recording is allocation-free.
#[derive(Debug, Clone, Default)]
pub struct FlightRing {
    buf: Vec<SpanFragment>,
    next: usize,
    seq: u32,
}

impl FlightRing {
    /// Takes the next per-node fragment sequence number.
    pub fn take_seq(&mut self) -> u32 {
        let s = self.seq;
        self.seq = self.seq.wrapping_add(1);
        s
    }

    /// Records a fragment, overwriting the oldest once `cap` is reached.
    pub fn push(&mut self, cap: usize, frag: SpanFragment) {
        if cap == 0 {
            return;
        }
        if self.buf.len() < cap {
            if self.buf.capacity() < cap {
                self.buf.reserve_exact(cap - self.buf.capacity());
            }
            self.buf.push(frag);
        } else {
            self.buf[self.next % cap] = frag;
        }
        self.next = (self.next + 1) % cap;
    }

    /// Iterates the retained fragments (insertion order is not
    /// meaningful; consumers sort).
    pub fn iter(&self) -> impl Iterator<Item = &SpanFragment> {
        self.buf.iter()
    }

    /// Number of retained fragments.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Switches for distributed-trace collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DtraceConfig {
    /// Keep every traced fragment for stitching (unbounded vector).
    pub collect: bool,
    /// Render flight-recorder post-mortems when an op fails, breaches
    /// `deadline`, or saw a mid-fetch re-route.
    pub postmortem: bool,
    /// Deadline whose breach triggers a post-mortem (in addition to
    /// failure and re-route triggers).
    pub deadline: Option<SimDuration>,
    /// Per-node flight-ring capacity (fragments). The ring records
    /// regardless of `collect`/`postmortem`; zero disables it.
    pub ring_cap: usize,
}

impl Default for DtraceConfig {
    fn default() -> Self {
        DtraceConfig { collect: false, postmortem: false, deadline: None, ring_cap: 64 }
    }
}

impl DtraceConfig {
    /// Collection on (for stitched traces), post-mortems off.
    pub fn collecting() -> Self {
        DtraceConfig { collect: true, ..Default::default() }
    }

    /// Post-mortems on with an optional deadline trigger.
    pub fn postmortems(deadline: Option<SimDuration>) -> Self {
        DtraceConfig { postmortem: true, deadline, ..Default::default() }
    }

    /// Both collection and post-mortems.
    pub fn full(deadline: Option<SimDuration>) -> Self {
        DtraceConfig { collect: true, postmortem: true, deadline, ..Default::default() }
    }
}

/// Per-network distributed-trace storage: one [`FlightRing`] per node,
/// the stitching collection, and the per-op bookkeeping the context
/// derivation needs (RPC send counters, op origins, re-route flags).
#[derive(Debug, Clone, Default)]
pub struct DtraceSink {
    cfg: DtraceConfig,
    rings: Vec<FlightRing>,
    fragments: Vec<SpanFragment>,
    rpc_seq: HashMap<u64, u32>,
    op_node: HashMap<u64, usize>,
    flagged: BTreeSet<u64>,
}

impl DtraceSink {
    /// A sink with rings for `nodes` nodes (buffers allocate lazily).
    pub fn new(nodes: usize) -> Self {
        DtraceSink { rings: vec![FlightRing::default(); nodes], ..Default::default() }
    }

    /// The active configuration.
    pub fn config(&self) -> DtraceConfig {
        self.cfg
    }

    /// Replaces the configuration. Already-collected fragments are kept.
    pub fn set_config(&mut self, cfg: DtraceConfig) {
        self.cfg = cfg;
    }

    /// Whether any op-level bookkeeping (collection or post-mortems) is
    /// on.
    pub fn active(&self) -> bool {
        self.cfg.collect || self.cfg.postmortem
    }

    /// Records one remote-side span on `node`: always into the node's
    /// flight ring, and into the stitching collection when collecting a
    /// real trace.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &mut self,
        tid: u64,
        parent: u64,
        node: usize,
        peer: Option<usize>,
        label: &'static str,
        detail: &'static str,
        a: u64,
        b: u64,
        start: SimTime,
        end: SimTime,
    ) {
        if node >= self.rings.len() {
            self.rings.resize(node + 1, FlightRing::default());
        }
        let ring = &mut self.rings[node];
        let seq = ring.take_seq();
        let frag = SpanFragment {
            trace_id: tid,
            span_id: fragment_span(tid, node, seq),
            parent,
            node: node as u32,
            peer: peer.map(|p| p as u32).unwrap_or(NO_PEER),
            label,
            detail,
            a,
            b,
            start,
            end,
            seq,
        };
        ring.push(self.cfg.ring_cap, frag);
        if self.cfg.collect && tid != 0 {
            self.fragments.push(frag);
        }
    }

    /// Every fragment collected for stitching, in record order.
    pub fn fragments(&self) -> &[SpanFragment] {
        &self.fragments
    }

    /// Drops the stitching collection (rings are untouched).
    pub fn clear_fragments(&mut self) {
        self.fragments.clear();
    }

    /// Gathers the flight-ring entries of one trace across every node.
    pub fn ring_entries_for(&self, tid: u64) -> Vec<SpanFragment> {
        if tid == 0 {
            return Vec::new();
        }
        self.rings
            .iter()
            .flat_map(FlightRing::iter)
            .filter(|f| f.trace_id == tid)
            .copied()
            .collect()
    }

    /// Registers an op's origin node (needed to re-derive its trace id
    /// after the op state is gone). No-op unless the sink is active.
    pub fn note_op(&mut self, op: OpId, node: usize) {
        if self.active() {
            self.op_node.insert(op.0, node);
        }
    }

    /// The origin node registered for `op`, if any.
    pub fn op_node(&self, op: OpId) -> Option<usize> {
        self.op_node.get(&op.0).copied()
    }

    /// Takes the next per-op RPC send index (numbers `RpcSent` events the
    /// same way the stitcher counts them).
    pub fn next_rpc_seq(&mut self, op: OpId) -> u32 {
        let e = self.rpc_seq.entry(op.0).or_insert(0);
        let s = *e;
        *e += 1;
        s
    }

    /// Flags `op` for a post-mortem (e.g. a mid-fetch re-route was
    /// observed). No-op unless the sink is active.
    pub fn flag(&mut self, op: OpId) {
        if self.active() {
            self.flagged.insert(op.0);
        }
    }

    /// Whether `op` was flagged.
    pub fn is_flagged(&self, op: OpId) -> bool {
        self.flagged.contains(&op.0)
    }

    /// Releases the per-op counters once the op has finished (its origin
    /// registration is kept so late stitching still works).
    pub fn finish_op(&mut self, op: OpId) {
        self.rpc_seq.remove(&op.0);
        self.flagged.remove(&op.0);
    }
}

// ---------------------------------------------------------------------------
// Stitching
// ---------------------------------------------------------------------------

/// Arena node used while assembling the distributed tree.
struct ArenaNode {
    label: String,
    start: SimTime,
    end: SimTime,
    children: Vec<usize>,
}

/// Joins a requester-side trace with the remote fragments of the same
/// trace id into one distributed [`SpanTree`]. Returns `None` for an
/// empty trace.
///
/// The requester skeleton mirrors
/// [`SpanTree::from_trace`](super::span::SpanTree::from_trace) exactly
/// (same pairing and clamping rules), but additionally assigns every
/// skeleton span its deterministic id so fragments can find their
/// parents. Fragments are sorted by `(start, end, node, seq, span_id)`
/// before attachment and children are re-sorted at materialization, so
/// the output is independent of the order fragments arrive in.
pub fn stitch(
    node: usize,
    op: OpId,
    trace: &OpTrace,
    fragments: &[SpanFragment],
) -> Option<SpanTree> {
    let tid = trace_id(node, op);
    let events = &trace.events;
    let first = events.first()?;
    let start = first.at;
    let end = events
        .iter()
        .find(|e| matches!(e.kind, TraceEventKind::OpFinished { .. }))
        .map(|e| e.at)
        .unwrap_or_else(|| events.last().map(|e| e.at).unwrap_or(start));
    let end = end.max(start);
    let op_label = events
        .iter()
        .find_map(|e| match e.kind {
            TraceEventKind::OpStarted { kind } => Some(kind),
            _ => None,
        })
        .unwrap_or("op");

    let mut nodes: Vec<ArenaNode> = Vec::new();
    let mut parent_of: Vec<Option<usize>> = Vec::new();
    let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
    let push = |nodes: &mut Vec<ArenaNode>,
                parent_of: &mut Vec<Option<usize>>,
                index: &mut HashMap<u64, Vec<usize>>,
                id: u64,
                parent: Option<usize>,
                label: String,
                s: SimTime,
                e: SimTime| {
        let idx = nodes.len();
        nodes.push(ArenaNode { label, start: s, end: e, children: Vec::new() });
        parent_of.push(parent);
        if let Some(p) = parent {
            nodes[p].children.push(idx);
        }
        index.entry(id).or_default().push(idx);
        idx
    };

    let root = push(
        &mut nodes,
        &mut parent_of,
        &mut index,
        root_span(tid),
        None,
        op_label.to_string(),
        start,
        end,
    );

    // Requester skeleton: phases tile the op; RPC and dial spans pair the
    // same way `SpanTree::from_trace` pairs them, while a global counter
    // assigns each `RpcSent` the send index the network numbered it with.
    let bounds: Vec<(usize, SimTime, &'static str)> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e.kind {
            TraceEventKind::PhaseEntered { phase } => Some((i, e.at, phase)),
            _ => None,
        })
        .collect();
    let mut rpc_seq: u32 = 0;
    let mut dial_seq: u32 = 0;
    for (pi, &(idx, at, phase)) in bounds.iter().enumerate() {
        let (next_idx, phase_end) = match bounds.get(pi + 1) {
            Some(&(ni, na, _)) => (ni, na),
            None => (events.len(), end),
        };
        let phase_end = phase_end.max(at);
        let pnode = push(
            &mut nodes,
            &mut parent_of,
            &mut index,
            phase_span(tid, phase),
            Some(root),
            phase.to_string(),
            at,
            phase_end,
        );
        let mut claimed = vec![false; events.len()];
        for i in idx..next_idx {
            match events[i].kind {
                TraceEventKind::RpcSent { kind, peer } => {
                    let matched = (i + 1..next_idx).find(|&j| {
                        !claimed[j]
                            && matches!(
                                events[j].kind,
                                TraceEventKind::RpcOk { peer: p }
                                | TraceEventKind::RpcFailed { peer: p } if p == peer
                            )
                    });
                    let child_end = match matched {
                        Some(j) => {
                            claimed[j] = true;
                            events[j].at
                        }
                        None => phase_end,
                    };
                    push(
                        &mut nodes,
                        &mut parent_of,
                        &mut index,
                        rpc_span(tid, rpc_seq),
                        Some(pnode),
                        format!("rpc:{kind}"),
                        events[i].at,
                        child_end,
                    );
                    rpc_seq += 1;
                }
                TraceEventKind::DialStarted { peer } => {
                    let matched = (i + 1..events.len()).find(|&j| {
                        !claimed[j]
                            && matches!(
                                events[j].kind,
                                TraceEventKind::DialCompleted { peer: p }
                                | TraceEventKind::DialFailed { peer: p, .. } if p == peer
                            )
                    });
                    let child_end = match matched {
                        Some(j) => {
                            claimed[j] = true;
                            events[j].at
                        }
                        None => phase_end,
                    };
                    push(
                        &mut nodes,
                        &mut parent_of,
                        &mut index,
                        span_id(tid, domain::DIAL, dial_seq as u64),
                        Some(pnode),
                        "dial".to_string(),
                        events[i].at,
                        child_end,
                    );
                    dial_seq += 1;
                }
                _ => {}
            }
        }
    }

    // Fragment attachment, order-insensitively: total-order sort, dedup
    // by span id, insert all arena nodes, then link parents (so a child
    // sorting before its equal-start parent still finds it).
    let mut frags: Vec<SpanFragment> =
        fragments.iter().filter(|f| f.trace_id == tid).copied().collect();
    frags.sort_by_key(|f| (f.start, f.end, f.node, f.seq, f.span_id));
    let mut seen: HashSet<u64> = HashSet::with_capacity(frags.len());
    frags.retain(|f| seen.insert(f.span_id));
    let mut fidx = Vec::with_capacity(frags.len());
    for f in &frags {
        let i = push(
            &mut nodes,
            &mut parent_of,
            &mut index,
            f.span_id,
            None,
            f.span_label(),
            f.start,
            f.end,
        );
        fidx.push(i);
    }
    for (f, &i) in frags.iter().zip(&fidx) {
        let target = locate(&nodes, &index, f.parent, f.start)
            .filter(|&p| !reaches(&parent_of, p, i))
            .unwrap_or(root);
        parent_of[i] = Some(target);
        nodes[target].children.push(i);
    }

    Some(SpanTree { root: materialize(&nodes, root, start, end) })
}

/// Picks the arena node carrying span id `id` best matching time `at`:
/// prefer an interval containing `at`, else the latest one starting at or
/// before `at`, else the first registered.
fn locate(
    nodes: &[ArenaNode],
    index: &HashMap<u64, Vec<usize>>,
    id: u64,
    at: SimTime,
) -> Option<usize> {
    let cands = index.get(&id)?;
    if let Some(&i) = cands.iter().find(|&&i| nodes[i].start <= at && at <= nodes[i].end) {
        return Some(i);
    }
    cands
        .iter()
        .copied()
        .filter(|&i| nodes[i].start <= at)
        .max_by_key(|&i| nodes[i].start)
        .or_else(|| cands.first().copied())
}

/// Whether following parent links from `from` reaches `target` (cycle
/// guard for malformed fragment sets).
fn reaches(parent_of: &[Option<usize>], mut from: usize, target: usize) -> bool {
    loop {
        if from == target {
            return true;
        }
        match parent_of[from] {
            Some(p) => from = p,
            None => return false,
        }
    }
}

/// Recursively materializes an arena node into a [`Span`], sorting
/// children by `(start, end, label)` and clamping them into the parent.
fn materialize(nodes: &[ArenaNode], i: usize, pstart: SimTime, pend: SimTime) -> Span {
    let n = &nodes[i];
    let s = n.start.max(pstart).min(pend);
    let e = n.end.clamp(s, pend);
    let mut kids = n.children.clone();
    kids.sort_by(|&a, &b| {
        (nodes[a].start, nodes[a].end, nodes[a].label.as_str()).cmp(&(
            nodes[b].start,
            nodes[b].end,
            nodes[b].label.as_str(),
        ))
    });
    Span {
        label: n.label.clone(),
        start: s,
        end: e,
        children: kids.into_iter().map(|k| materialize(nodes, k, s, e)).collect(),
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Serialises a span tree as nested JSON objects
/// (`{"label", "start_us", "end_us", "children": [...]}`).
pub fn span_tree_json(tree: &SpanTree) -> String {
    fn rec(s: &Span, out: &mut String) {
        out.push_str(&format!(
            "{{\"label\":\"{}\",\"start_us\":{},\"end_us\":{},\"children\":[",
            s.label,
            s.start.as_nanos() / 1_000,
            s.end.as_nanos() / 1_000
        ));
        for (i, c) in s.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            rec(c, out);
        }
        out.push_str("]}");
    }
    let mut out = String::new();
    rec(&tree.root, &mut out);
    out
}

/// One exported trace exemplar: metadata, the distributed critical path,
/// and the full stitched tree.
pub fn exemplar_json(cell: &str, op: OpId, tree: &SpanTree) -> String {
    let path = tree.critical_path();
    let hops: Vec<String> = path
        .iter()
        .map(|h| {
            format!(
                "{{\"label\":\"{}\",\"start_us\":{},\"end_us\":{}}}",
                h.label,
                h.start.as_nanos() / 1_000,
                h.end.as_nanos() / 1_000
            )
        })
        .collect();
    format!(
        "{{\"cell\":\"{}\",\"op\":{},\"duration_us\":{},\"critical_path_us\":{},\"critical_path\":[{}],\"tree\":{}}}",
        cell,
        op.0,
        tree.duration().as_nanos() / 1_000,
        tree.critical_path_duration().as_nanos() / 1_000,
        hops.join(","),
        span_tree_json(tree)
    )
}

/// Renders a flight-recorder post-mortem: the op's identity and outcome,
/// the peers it lost mid-op, and every retained fragment in causal
/// order. `entries` come from [`DtraceSink::ring_entries_for`].
pub fn render_postmortem(
    op: OpId,
    origin: usize,
    kind: &str,
    outcome: &str,
    t0: SimTime,
    end: SimTime,
    entries: &[SpanFragment],
) -> String {
    let mut es: Vec<SpanFragment> = entries.to_vec();
    es.sort_by_key(|f| (f.start, f.node, f.seq));
    let mut out = format!(
        "post-mortem op={} origin=n{} kind={} outcome={} dur_us={}\n",
        op.0,
        origin,
        kind,
        outcome,
        end.since(t0).as_nanos() / 1_000
    );
    let mut lost: Vec<u64> = es
        .iter()
        .filter(|f| f.detail == "reroute" || f.detail == "want_failed")
        .map(|f| f.b)
        .collect();
    lost.sort_unstable();
    lost.dedup();
    if !lost.is_empty() {
        let names: Vec<String> = lost.iter().map(|n| format!("n{n}")).collect();
        out.push_str(&format!("  peers lost mid-op: {}\n", names.join(" ")));
    }
    for f in &es {
        let dt = f.start.max(t0).since(t0).as_nanos() / 1_000;
        let line = match (f.label, f.detail) {
            ("srv", d) => format!(
                "  +{dt}us n{} srv:{d} from=n{} dur_us={} closer={}",
                f.node,
                f.peer,
                f.end.since(f.start).as_nanos() / 1_000,
                f.a
            ),
            ("bs", "block_serve") => format!(
                "  +{dt}us n{} bs:block_serve to=n{} bytes={} queue_us={}",
                f.node,
                f.peer,
                f.a,
                f.b / 1_000
            ),
            ("bs", "reroute") => format!(
                "  +{dt}us n{} bs:reroute want={:016x} -> n{} (lost n{})",
                f.node, f.a, f.peer, f.b
            ),
            ("bs", "want_failed") => {
                format!("  +{dt}us n{} bs:want_failed want={:016x} (lost n{})", f.node, f.a, f.b)
            }
            ("gw", d) => format!(
                "  +{dt}us n{} gw:{d} dur_us={}",
                f.node,
                f.end.since(f.start).as_nanos() / 1_000
            ),
            (l, d) => format!("  +{dt}us n{} {l}:{d} a={} b={}", f.node, f.a, f.b),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::TraceEvent;
    use proptest::prelude::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn ev(ms: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { at: at(ms), kind }
    }

    /// The §3.2 retrieval trace from the span-tree tests: probe 1 s,
    /// provider walk 400 ms (2 RPCs), peer walk 300 ms, fetch 500 ms.
    fn retrieval_trace() -> OpTrace {
        OpTrace {
            events: vec![
                ev(0, TraceEventKind::OpStarted { kind: "retrieve" }),
                ev(0, TraceEventKind::PhaseEntered { phase: "bitswap_probe" }),
                ev(1000, TraceEventKind::PhaseEntered { phase: "provider_walk" }),
                ev(1000, TraceEventKind::RpcSent { kind: "GET_PROVIDERS", peer: 4 }),
                ev(1150, TraceEventKind::RpcOk { peer: 4 }),
                ev(1150, TraceEventKind::RpcSent { kind: "GET_PROVIDERS", peer: 9 }),
                ev(1400, TraceEventKind::RpcOk { peer: 9 }),
                ev(1400, TraceEventKind::PhaseEntered { phase: "peer_walk" }),
                ev(1450, TraceEventKind::RpcSent { kind: "FIND_NODE", peer: 2 }),
                ev(1700, TraceEventKind::RpcFailed { peer: 2 }),
                ev(1700, TraceEventKind::PhaseEntered { phase: "fetch" }),
                ev(1700, TraceEventKind::DialStarted { peer: 7 }),
                ev(1820, TraceEventKind::DialCompleted { peer: 7 }),
                ev(2200, TraceEventKind::OpFinished { success: true }),
            ],
        }
    }

    /// Fragments a remote-side recording of the same op would produce:
    /// handler spans inside both GET_PROVIDERS RPCs and a BLOCK serve
    /// inside the fetch phase.
    fn remote_fragments(tid: u64) -> Vec<SpanFragment> {
        let mk = |node: usize, seq: u32, parent, peer, detail, a, b, s, e| SpanFragment {
            trace_id: tid,
            span_id: fragment_span(tid, node, seq),
            parent,
            node: node as u32,
            peer,
            label: if detail == "block_serve" { "bs" } else { "srv" },
            detail,
            a,
            b,
            start: at(s),
            end: at(e),
            seq,
        };
        vec![
            mk(4, 0, rpc_span(tid, 0), 0, "GET_PROVIDERS", 12, 0, 1070, 1080),
            mk(9, 0, rpc_span(tid, 1), 0, "GET_PROVIDERS", 8, 0, 1270, 1280),
            mk(7, 0, phase_span(tid, "fetch"), 0, "block_serve", 262_144, 2_000_000, 1900, 2100),
        ]
    }

    fn labels_of(span: &Span) -> Vec<String> {
        let mut out = vec![span.label.clone()];
        for c in &span.children {
            out.extend(labels_of(c));
        }
        out
    }

    #[test]
    fn ids_are_deterministic_and_nonzero() {
        let a = trace_id(7, OpId(42));
        let b = trace_id(7, OpId(42));
        assert_eq!(a, b);
        assert_ne!(a, 0);
        assert_ne!(trace_id(7, OpId(43)), a);
        assert_ne!(trace_id(8, OpId(42)), a);
        for d in [domain::ROOT, domain::PHASE, domain::RPC, domain::FRAGMENT, domain::DIAL] {
            assert_ne!(span_id(a, d, 0), 0);
        }
        assert_ne!(rpc_span(a, 0), rpc_span(a, 1));
        assert_ne!(phase_span(a, "fetch"), phase_span(a, "bitswap_probe"));
    }

    #[test]
    fn flight_ring_is_bounded_and_overwrites_oldest() {
        let mut ring = FlightRing::default();
        let frag = |i: u32| SpanFragment {
            trace_id: 1,
            span_id: i as u64 + 1,
            parent: 0,
            node: 0,
            peer: NO_PEER,
            label: "srv",
            detail: "",
            a: i as u64,
            b: 0,
            start: SimTime::ZERO,
            end: SimTime::ZERO,
            seq: i,
        };
        for i in 0..10 {
            let s = ring.take_seq();
            assert_eq!(s, i);
            ring.push(4, frag(i));
        }
        assert_eq!(ring.len(), 4);
        let kept: Vec<u64> = {
            let mut v: Vec<u64> = ring.iter().map(|f| f.a).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(kept, vec![6, 7, 8, 9], "oldest entries overwritten");
        // Zero capacity records nothing.
        let mut off = FlightRing::default();
        off.push(0, frag(0));
        assert!(off.is_empty());
    }

    #[test]
    fn sink_routes_fragments_by_config() {
        let mut sink = DtraceSink::new(2);
        // Default config: ring only.
        sink.record_span(5, 9, 0, Some(1), "srv", "FIND_NODE", 3, 0, at(0), at(1));
        assert!(sink.fragments().is_empty());
        assert_eq!(sink.ring_entries_for(5).len(), 1);
        // Collecting: fragments retained; untraced (tid 0) ones are not.
        sink.set_config(DtraceConfig::collecting());
        sink.record_span(5, 9, 1, None, "srv", "FIND_NODE", 3, 0, at(1), at(2));
        sink.record_span(0, 0, 1, None, "srv", "FIND_NODE", 3, 0, at(2), at(3));
        assert_eq!(sink.fragments().len(), 1);
        assert_eq!(sink.ring_entries_for(5).len(), 2);
        // Per-op bookkeeping requires an active config.
        sink.note_op(OpId(1), 7);
        assert_eq!(sink.op_node(OpId(1)), Some(7));
        sink.flag(OpId(1));
        assert!(sink.is_flagged(OpId(1)));
        sink.finish_op(OpId(1));
        assert!(!sink.is_flagged(OpId(1)));
        assert_eq!(sink.op_node(OpId(1)), Some(7), "origin survives finish for late stitching");
        assert_eq!(sink.next_rpc_seq(OpId(2)), 0);
        assert_eq!(sink.next_rpc_seq(OpId(2)), 1);
    }

    #[test]
    fn stitch_attaches_remote_spans_under_their_causes() {
        let trace = retrieval_trace();
        let tid = trace_id(3, OpId(11));
        let frags = remote_fragments(tid);
        let tree = stitch(3, OpId(11), &trace, &frags).unwrap();
        let labels = labels_of(&tree.root);
        assert!(labels.contains(&"srv:GET_PROVIDERS@n4".to_string()), "{labels:?}");
        assert!(labels.contains(&"srv:GET_PROVIDERS@n9".to_string()), "{labels:?}");
        assert!(labels.contains(&"bs:block_serve@n7".to_string()), "{labels:?}");
        // The handler span sits inside the RPC span that caused it.
        let walk = &tree.root.children[1];
        assert_eq!(walk.label, "provider_walk");
        let rpc0 = &walk.children[0];
        assert_eq!(rpc0.label, "rpc:GET_PROVIDERS");
        assert_eq!(rpc0.children.len(), 1);
        assert_eq!(rpc0.children[0].label, "srv:GET_PROVIDERS@n4");
        // The BLOCK serve sits inside the fetch phase.
        let fetch = tree.root.children.iter().find(|c| c.label == "fetch").unwrap();
        assert!(fetch.children.iter().any(|c| c.label == "bs:block_serve@n7"));
        // Critical-path discipline carries over to the stitched tree.
        assert!(tree.critical_path_duration() <= tree.duration());
        let path = tree.critical_path();
        for pair in path.windows(2) {
            assert!(pair[0].end <= pair[1].start, "hops overlap: {path:?}");
        }
        // The distributed path descends into the remote serve span.
        assert!(path.iter().any(|h| h.label.contains("@n")), "remote hop on the path: {path:?}");
    }

    #[test]
    fn stitch_without_fragments_matches_local_tree_shape() {
        let trace = retrieval_trace();
        let local = crate::obs::span::SpanTree::from_trace(&trace).unwrap();
        let stitched = stitch(0, OpId(0), &trace, &[]).unwrap();
        assert_eq!(local, stitched, "no fragments → identical to the local tree");
    }

    #[test]
    fn orphan_fragments_fall_back_to_the_root() {
        let trace = retrieval_trace();
        let tid = trace_id(1, OpId(2));
        let orphan = SpanFragment {
            trace_id: tid,
            span_id: fragment_span(tid, 5, 0),
            parent: 0xDEAD_BEEF, // unknown parent span
            node: 5,
            peer: NO_PEER,
            label: "gw",
            detail: "serve",
            a: 0,
            b: 0,
            start: at(100),
            end: at(200),
            seq: 0,
        };
        let tree = stitch(1, OpId(2), &trace, &[orphan]).unwrap();
        assert!(tree.root.children.iter().any(|c| c.label == "gw:serve@n5"));
        // Fragments of other traces are ignored entirely.
        let foreign = SpanFragment { trace_id: tid ^ 2, ..orphan };
        let tree2 = stitch(1, OpId(2), &trace, &[foreign]).unwrap();
        assert!(!labels_of(&tree2.root).iter().any(|l| l.contains("gw")));
    }

    #[test]
    fn exemplar_json_is_well_formed() {
        let trace = retrieval_trace();
        let tid = trace_id(3, OpId(11));
        let tree = stitch(3, OpId(11), &trace, &remote_fragments(tid)).unwrap();
        let json = exemplar_json("smoke/EU", OpId(11), &tree);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cell\":\"smoke/EU\""));
        assert!(json.contains("\"op\":11"));
        assert!(json.contains("\"critical_path\":["));
        assert!(json.contains("srv:GET_PROVIDERS@n4"));
        assert!(json.contains("\"duration_us\":2200000"));
    }

    #[test]
    fn postmortem_names_lost_peers_and_rerouted_wants() {
        let tid = trace_id(7, OpId(3));
        let reroute = SpanFragment {
            trace_id: tid,
            span_id: fragment_span(tid, 7, 0),
            parent: phase_span(tid, "fetch"),
            node: 7,
            peer: 11,
            label: "bs",
            detail: "reroute",
            a: 0xABCD,
            b: 42,
            start: at(10),
            end: at(10),
            seq: 0,
        };
        let failed = SpanFragment {
            span_id: fragment_span(tid, 7, 1),
            peer: NO_PEER,
            detail: "want_failed",
            a: 0xEF01,
            seq: 1,
            ..reroute
        };
        let text =
            render_postmortem(OpId(3), 7, "retrieve", "failed", at(0), at(20), &[failed, reroute]);
        assert!(text.starts_with("post-mortem op=3 origin=n7 kind=retrieve outcome=failed"));
        assert!(text.contains("peers lost mid-op: n42"), "{text}");
        assert!(text.contains("bs:reroute want=000000000000abcd -> n11 (lost n42)"), "{text}");
        assert!(text.contains("bs:want_failed want=000000000000ef01 (lost n42)"), "{text}");
        // Rendering is order-insensitive (entries are sorted internally).
        let swapped =
            render_postmortem(OpId(3), 7, "retrieve", "failed", at(0), at(20), &[reroute, failed]);
        assert_eq!(text, swapped);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Stitching a shuffled fragment set reproduces the in-order
        /// tree byte-for-byte (satellite: order-insensitivity).
        #[test]
        fn stitching_is_order_insensitive(
            shuffle_keys in proptest::collection::vec(0u64..1_000_000, 16),
            extra in proptest::collection::vec((0u64..2_200, 0u64..400, 0usize..20), 0..13),
        ) {
            // A permutation of 0..16 derived by sorting random keys (the
            // vendored proptest shim has no shuffle strategy).
            let mut perm: Vec<usize> = (0..16).collect();
            perm.sort_by_key(|&i| (shuffle_keys[i], i));
            let trace = retrieval_trace();
            let tid = trace_id(3, OpId(11));
            let mut frags = remote_fragments(tid);
            // Extra fragments parented to arbitrary known spans.
            for (i, &(s, d, node)) in extra.iter().enumerate() {
                let parent = match i % 3 {
                    0 => rpc_span(tid, (i % 3) as u32),
                    1 => phase_span(tid, "fetch"),
                    _ => root_span(tid),
                };
                frags.push(SpanFragment {
                    trace_id: tid,
                    span_id: fragment_span(tid, node, 100 + i as u32),
                    parent,
                    node: node as u32,
                    peer: NO_PEER,
                    label: "srv",
                    detail: "FIND_NODE",
                    a: i as u64,
                    b: 0,
                    start: at(s),
                    end: at(s + d),
                    seq: 100 + i as u32,
                });
            }
            let canonical = stitch(3, OpId(11), &trace, &frags).unwrap();
            let shuffled: Vec<SpanFragment> =
                perm.iter().filter(|&&i| i < frags.len()).map(|&i| frags[i]).collect();
            // The permutation covers indices 0..16; restrict to the real
            // set and append any tail beyond 16 unshuffled.
            let mut rest: Vec<SpanFragment> = frags.iter().skip(16).copied().collect();
            let mut shuffled = shuffled;
            shuffled.append(&mut rest);
            prop_assert_eq!(shuffled.len(), frags.len());
            let stitched = stitch(3, OpId(11), &trace, &shuffled).unwrap();
            prop_assert_eq!(&canonical, &stitched);
            prop_assert_eq!(span_tree_json(&canonical), span_tree_json(&stitched));
            // Structural invariants hold for arbitrary fragment sets.
            prop_assert!(stitched.critical_path_duration() <= stitched.duration());
        }
    }
}
