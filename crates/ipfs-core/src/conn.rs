//! Arena-backed warm-connection set with intrusive LRU order.
//!
//! Replaces the previous per-node `HashMap + BTreeMap` connection index
//! (two heap structures and a simulation-global stamp clock per touch)
//! with a single slot arena threaded by an intrusive doubly-linked list:
//! insert/touch moves a slot to the list tail in O(1) with no allocation
//! after warm-up, the LRU victim is the head, and idle expiry walks from
//! the head and stops at the first fresh entry.
//!
//! **Behavioral equivalence.** In the old structure every insert/touch
//! took a fresh, strictly increasing global stamp, so within one node's
//! set the stamp order *was* the last-touch order — exactly the order an
//! intrusive move-to-back list maintains. All observable orders (LRU
//! victim, idle-expiry order, `drain`/`peers` oldest-first) are therefore
//! identical, which keeps every recorded simulation artifact byte-stable
//! (property-tested against a reference model below).

use crate::netsim::NodeId;
use simnet::{SimDuration, SimTime};
use std::collections::HashMap;

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot {
    peer: NodeId,
    last_used: SimTime,
    prev: u32,
    next: u32,
}

/// A node's warm-connection set: arena slots + intrusive LRU list.
///
/// Oldest (least recently touched) entries sit at the head; every
/// [`ConnSet::insert`] moves its entry to the tail. Freed slots are
/// recycled through a free list, so a node's set reaches a steady state
/// with zero allocation.
#[derive(Debug, Clone, Default)]
pub struct ConnSet {
    slots: Vec<Slot>,
    index: HashMap<NodeId, u32>,
    head: u32,
    tail: u32,
    free: u32,
}

impl ConnSet {
    /// Creates an empty set.
    pub fn new() -> ConnSet {
        ConnSet { slots: Vec::new(), index: HashMap::new(), head: NONE, tail: NONE, free: NONE }
    }

    /// Number of warm connections.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `peer` is connected.
    pub fn contains(&self, peer: NodeId) -> bool {
        self.index.contains_key(&peer)
    }

    /// When the connection to `peer` was last used, if connected.
    pub fn last_used(&self, peer: NodeId) -> Option<SimTime> {
        self.index.get(&peer).map(|&s| self.slots[s as usize].last_used)
    }

    /// Inserts a connection, or re-marks an existing one as just used.
    /// Either way the entry becomes the most recently used.
    pub fn insert(&mut self, peer: NodeId, now: SimTime) {
        if let Some(&s) = self.index.get(&peer) {
            self.slots[s as usize].last_used = now;
            self.unlink(s);
            self.push_back(s);
            return;
        }
        let s = if self.free != NONE {
            let s = self.free;
            self.free = self.slots[s as usize].next;
            self.slots[s as usize] = Slot { peer, last_used: now, prev: NONE, next: NONE };
            s
        } else {
            self.slots.push(Slot { peer, last_used: now, prev: NONE, next: NONE });
            (self.slots.len() - 1) as u32
        };
        self.index.insert(peer, s);
        self.push_back(s);
    }

    /// Removes the connection to `peer`. Returns whether it existed.
    pub fn remove(&mut self, peer: NodeId) -> bool {
        match self.index.remove(&peer) {
            Some(s) => {
                self.unlink(s);
                self.release(s);
                true
            }
            None => false,
        }
    }

    /// The least-recently-used peer (the prune victim).
    pub fn lru(&self) -> Option<NodeId> {
        (self.head != NONE).then(|| self.slots[self.head as usize].peer)
    }

    /// Removes and returns the LRU connection if it has sat idle past
    /// `timeout`. Callers loop until `None`: list order is last-use order,
    /// so the first fresh entry proves the rest are fresh too.
    pub fn pop_idle(&mut self, now: SimTime, timeout: SimDuration) -> Option<NodeId> {
        if self.head == NONE {
            return None;
        }
        let s = self.head;
        let slot = &self.slots[s as usize];
        if now.since(slot.last_used) > timeout {
            let peer = slot.peer;
            self.index.remove(&peer);
            self.unlink(s);
            self.release(s);
            Some(peer)
        } else {
            None
        }
    }

    /// Removes every connection, returning the peers oldest-first.
    pub fn drain(&mut self) -> Vec<NodeId> {
        let peers: Vec<NodeId> = self.peers().collect();
        self.slots.clear();
        self.index.clear();
        self.head = NONE;
        self.tail = NONE;
        self.free = NONE;
        peers
    }

    /// Connected peers, oldest (least recently used) first.
    pub fn peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NONE {
                return None;
            }
            let slot = &self.slots[cur as usize];
            cur = slot.next;
            Some(slot.peer)
        })
    }

    /// Logical bytes held (length-based, allocation-independent): arena
    /// slot plus index entry per live connection.
    pub fn bytes(&self) -> u64 {
        let per_entry = std::mem::size_of::<Slot>() + std::mem::size_of::<(NodeId, u32)>();
        (self.len() * per_entry) as u64
    }

    fn unlink(&mut self, s: u32) {
        let (prev, next) = {
            let slot = &self.slots[s as usize];
            (slot.prev, slot.next)
        };
        if prev != NONE {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_back(&mut self, s: u32) {
        self.slots[s as usize].prev = self.tail;
        self.slots[s as usize].next = NONE;
        if self.tail != NONE {
            self.slots[self.tail as usize].next = s;
        } else {
            self.head = s;
        }
        self.tail = s;
    }

    fn release(&mut self, s: u32) {
        self.slots[s as usize].next = self.free;
        self.free = s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{BTreeMap, HashMap};

    /// The previous stamp-based implementation, kept as the reference
    /// model for the equivalence proptest.
    #[derive(Default)]
    struct StampSet {
        by_peer: HashMap<NodeId, (u64, SimTime)>,
        by_stamp: BTreeMap<u64, NodeId>,
        clock: u64,
    }

    impl StampSet {
        fn insert(&mut self, peer: NodeId, now: SimTime) {
            self.clock += 1;
            let stamp = self.clock;
            if let Some((old, _)) = self.by_peer.insert(peer, (stamp, now)) {
                self.by_stamp.remove(&old);
            }
            self.by_stamp.insert(stamp, peer);
        }

        fn remove(&mut self, peer: NodeId) -> bool {
            match self.by_peer.remove(&peer) {
                Some((stamp, _)) => {
                    self.by_stamp.remove(&stamp);
                    true
                }
                None => false,
            }
        }

        fn lru(&self) -> Option<NodeId> {
            self.by_stamp.values().next().copied()
        }

        fn pop_idle(&mut self, now: SimTime, timeout: SimDuration) -> Option<NodeId> {
            let (&stamp, &peer) = self.by_stamp.iter().next()?;
            let (_, last_used) = self.by_peer[&peer];
            if now.since(last_used) > timeout {
                self.by_stamp.remove(&stamp);
                self.by_peer.remove(&peer);
                Some(peer)
            } else {
                None
            }
        }

        fn peers(&self) -> Vec<NodeId> {
            self.by_stamp.values().copied().collect()
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn insert_touch_orders_by_recency() {
        let mut c = ConnSet::new();
        c.insert(1, t(0));
        c.insert(2, t(1));
        c.insert(3, t(2));
        assert_eq!(c.peers().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(c.lru(), Some(1));
        // Touching 1 moves it to the back.
        c.insert(1, t(3));
        assert_eq!(c.peers().collect::<Vec<_>>(), vec![2, 3, 1]);
        assert_eq!(c.lru(), Some(2));
        assert_eq!(c.len(), 3);
        assert_eq!(c.last_used(1), Some(t(3)));
    }

    #[test]
    fn remove_and_slot_reuse() {
        let mut c = ConnSet::new();
        for p in 0..8usize {
            c.insert(p, t(p as u64));
        }
        assert!(c.remove(3));
        assert!(!c.remove(3));
        c.insert(99, t(10));
        // Freed slot recycled: arena did not grow.
        assert_eq!(c.slots.len(), 8);
        assert_eq!(c.len(), 8);
        assert_eq!(c.peers().last(), Some(99));
    }

    #[test]
    fn pop_idle_stops_at_first_fresh() {
        let mut c = ConnSet::new();
        c.insert(1, t(0));
        c.insert(2, t(50));
        c.insert(3, t(900));
        let timeout = SimDuration::from_millis(100);
        assert_eq!(c.pop_idle(t(1000), timeout), Some(1));
        assert_eq!(c.pop_idle(t(1000), timeout), Some(2));
        assert_eq!(c.pop_idle(t(1000), timeout), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn drain_is_oldest_first_and_resets() {
        let mut c = ConnSet::new();
        c.insert(5, t(0));
        c.insert(4, t(1));
        c.insert(5, t(2));
        assert_eq!(c.drain(), vec![4, 5]);
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        c.insert(7, t(3));
        assert_eq!(c.peers().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn bytes_tracks_live_entries() {
        let mut c = ConnSet::new();
        assert_eq!(c.bytes(), 0);
        c.insert(1, t(0));
        c.insert(2, t(0));
        let two = c.bytes();
        c.remove(1);
        assert_eq!(c.bytes(), two / 2);
    }

    proptest! {
        /// The arena list must match the stamp-ordered reference on every
        /// observable: membership, LRU victim, idle expiry, and full order.
        #[test]
        fn matches_stamp_reference(
            ops in prop::collection::vec((0u8..4, 0usize..12, 0u64..2000), 1..200),
        ) {
            let mut arena = ConnSet::new();
            let mut model = StampSet::default();
            let mut clock_ms = 0u64;
            for (op, peer, arg) in ops {
                clock_ms += 1;
                let now = t(clock_ms);
                match op {
                    0 => {
                        arena.insert(peer, now);
                        model.insert(peer, now);
                    }
                    1 => {
                        prop_assert_eq!(arena.remove(peer), model.remove(peer));
                    }
                    2 => {
                        let timeout = SimDuration::from_millis(arg % 500);
                        prop_assert_eq!(
                            arena.pop_idle(now, timeout),
                            model.pop_idle(now, timeout)
                        );
                    }
                    _ => {
                        prop_assert_eq!(arena.lru(), model.lru());
                    }
                }
                prop_assert_eq!(arena.len(), model.by_peer.len());
                prop_assert_eq!(arena.peers().collect::<Vec<_>>(), model.peers());
            }
        }
    }
}
