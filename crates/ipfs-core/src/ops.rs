//! Operation state machines and timing reports.
//!
//! Every publish/retrieve run through the simulated network produces a
//! phase-by-phase timing report. These reports are the raw data behind the
//! paper's Figure 9 (publication: overall / DHT walk / RPC batch;
//! retrieval: overall / DHT walks / fetch), Table 4 (per-region
//! percentiles) and Figure 10 (retrieval stretch).

use crate::ipns::IpnsRecord;
use multiformats::{Cid, PeerId};
use simnet::{SimDuration, SimTime};

/// Identifier of an operation within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u64);

/// Phases of a publication (paper Figure 3, steps 1–3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PublishPhase {
    /// DHT walk to find the k closest peers to the CID.
    Walk,
    /// Fire-and-forget ADD_PROVIDER batch; counts outstanding items.
    RpcBatch {
        /// Items not yet settled (delivered or timed out).
        outstanding: usize,
        /// Items that reached a live peer.
        stored: usize,
    },
}

/// Phases of a retrieval (paper Figure 3, steps 4–6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum RetrievePhase {
    /// Opportunistic Bitswap broadcast to connected peers (1 s budget).
    BitswapProbe,
    /// First DHT walk: find a provider record.
    ProviderWalk,
    /// Second DHT walk: resolve the provider's PeerID to addresses.
    PeerWalk,
    /// Dial the provider and exchange blocks.
    Fetch,
}

/// Timing report for one publication.
#[derive(Debug, Clone)]
pub struct PublishReport {
    /// Operation id.
    pub op: OpId,
    /// Publishing node's index.
    pub node: usize,
    /// The published CID.
    pub cid: Cid,
    /// When the operation started.
    pub started_at: SimTime,
    /// Total duration: walk + RPC batch (§6.1 "Overall Delay").
    pub total: SimDuration,
    /// DHT-walk component (Figure 9b) — on average 87.9 % of the total in
    /// the paper.
    pub dht_walk: SimDuration,
    /// ADD_PROVIDER batch component (Figure 9c).
    pub rpc_batch: SimDuration,
    /// Provider records that reached a live peer (target: 20).
    pub records_stored: usize,
    /// FIND_NODE RPCs issued by the walk.
    pub walk_rpcs: u64,
    /// Walk RPCs that failed (timeout / unreachable).
    pub walk_failures: u64,
    /// Whether the walk found any peers to store on.
    pub success: bool,
}

/// Timing report for one IPNS name publication (§3.3): a Closest walk to
/// the name's key followed by a PUT_VALUE batch.
#[derive(Debug, Clone)]
pub struct IpnsPublishReport {
    /// Operation id.
    pub op: OpId,
    /// Publishing node.
    pub node: usize,
    /// The IPNS name.
    pub name: PeerId,
    /// Total duration.
    pub total: SimDuration,
    /// DHT-walk component.
    pub dht_walk: SimDuration,
    /// Records that reached a live server.
    pub records_stored: usize,
    /// Whether any record was stored.
    pub success: bool,
}

/// Timing report for one IPNS resolution (§3.3): a Value walk.
#[derive(Debug, Clone)]
pub struct IpnsResolveReport {
    /// Operation id.
    pub op: OpId,
    /// Resolving node.
    pub node: usize,
    /// The name resolved.
    pub name: PeerId,
    /// Total duration.
    pub total: SimDuration,
    /// The validated record, if resolution succeeded.
    pub record: Option<IpnsRecord>,
    /// Whether a valid record was obtained.
    pub success: bool,
}

/// Timing report for one retrieval.
#[derive(Debug, Clone)]
pub struct RetrieveReport {
    /// Operation id.
    pub op: OpId,
    /// Retrieving node's index.
    pub node: usize,
    /// The requested CID.
    pub cid: Cid,
    /// When the operation started.
    pub started_at: SimTime,
    /// Total duration (§6.2 "Overall delay").
    pub total: SimDuration,
    /// Opportunistic-Bitswap phase (1 s timeout unless a neighbour had the
    /// content, §3.2).
    pub bitswap_probe: SimDuration,
    /// First DHT walk (provider record), Figure 9e.
    pub provider_walk: SimDuration,
    /// Second DHT walk (peer record), Figure 9e.
    pub peer_walk: SimDuration,
    /// Dial + content exchange (Figure 9f).
    pub fetch: SimDuration,
    /// Bytes of content fetched.
    pub bytes: u64,
    /// Whether the content arrived and verified.
    pub success: bool,
    /// Whether the opportunistic Bitswap phase satisfied the request
    /// (skipping the DHT entirely).
    pub via_bitswap: bool,
    /// Whether the address book skipped the second walk (§3.2).
    pub addrbook_hit: bool,
}

impl RetrieveReport {
    /// Total "Discover" time: everything before dial+fetch (equation 2).
    pub fn discover(&self) -> SimDuration {
        self.bitswap_probe + self.provider_walk + self.peer_walk
    }

    /// Retrieval stretch (paper equation 1/2):
    /// `total / (total − discover)` — IPFS time over estimated HTTPS time.
    pub fn stretch(&self) -> f64 {
        let denom = self.total.saturating_sub(self.discover()).as_secs_f64();
        if denom <= 0.0 {
            return f64::INFINITY;
        }
        self.total.as_secs_f64() / denom
    }

    /// Stretch with the initial Bitswap timeout removed (Figure 10b):
    /// `(total − bitswap) / (total − discover)`.
    pub fn stretch_without_bitswap(&self) -> f64 {
        let denom = self.total.saturating_sub(self.discover()).as_secs_f64();
        if denom <= 0.0 {
            return f64::INFINITY;
        }
        self.total.saturating_sub(self.bitswap_probe).as_secs_f64() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(bitswap_ms: u64, walks_ms: u64, fetch_ms: u64) -> RetrieveReport {
        RetrieveReport {
            op: OpId(0),
            node: 0,
            cid: Cid::from_raw_data(b"x"),
            started_at: SimTime::ZERO,
            total: SimDuration::from_millis(bitswap_ms + walks_ms + fetch_ms),
            bitswap_probe: SimDuration::from_millis(bitswap_ms),
            provider_walk: SimDuration::from_millis(walks_ms / 2),
            peer_walk: SimDuration::from_millis(walks_ms - walks_ms / 2),
            fetch: SimDuration::from_millis(fetch_ms),
            bytes: 512 * 1024,
            success: true,
            via_bitswap: false,
            addrbook_hit: false,
        }
    }

    #[test]
    fn stretch_matches_equation() {
        // 1s bitswap + 1s walks + 0.5s fetch: discover = 2s, https = 0.5s.
        let r = report(1000, 1000, 500);
        assert!((r.stretch() - 5.0).abs() < 1e-9);
        // Without bitswap: (2.5 - 1.0) / 0.5 = 3.
        assert!((r.stretch_without_bitswap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn stretch_of_pure_fetch_is_one() {
        let r = report(0, 0, 700);
        assert!((r.stretch() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn discover_sums_phases() {
        let r = report(1000, 800, 200);
        assert_eq!(r.discover(), SimDuration::from_millis(1800));
    }

    #[test]
    fn degenerate_zero_fetch_is_infinite() {
        let r = report(1000, 500, 0);
        assert!(r.stretch().is_infinite());
    }
}
