//! IPNS: mutable naming over immutable content (paper §3.3).
//!
//! "IPFS provides the option of publishing content based on the hash of
//! the publisher's public key ... Those, so called InterPlanetary Name
//! System (IPNS) records, map the CID of the publisher's public key to
//! another CID signed by the corresponding private key. This way, content
//! can be updated and obtain a different CID, but an immutable reference
//! is created and used."
//!
//! A record carries a monotonically increasing sequence number so that
//! resolvers converge on the newest version, and a signature binding
//! (value, sequence, validity) to the publisher's key.

use multiformats::{varint, Cid, Keypair, PeerId, PublicKey, Signature};
use simnet::{SimDuration, SimTime};
use std::collections::HashMap;

/// Default record validity window (go-ipfs: 24 h).
pub const IPNS_VALIDITY: SimDuration = SimDuration::from_hours(24);

/// A signed IPNS record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IpnsRecord {
    /// The name: the publisher's PeerID (hash of its public key).
    pub name: PeerId,
    /// The publisher's public key (needed to verify; real IPNS embeds it
    /// the same way for non-inlineable keys).
    pub public_key: PublicKey,
    /// The CID the name currently points at.
    pub value: Cid,
    /// Monotonic sequence number; higher wins.
    pub sequence: u64,
    /// When the record was created.
    pub created_at: SimTime,
    /// How long the record stays valid.
    pub validity: SimDuration,
    /// Signature over (value, sequence, validity).
    pub signature: Signature,
}

impl IpnsRecord {
    /// Creates and signs a record with `keypair`.
    pub fn sign(
        keypair: &Keypair,
        value: Cid,
        sequence: u64,
        created_at: SimTime,
        validity: SimDuration,
    ) -> IpnsRecord {
        let payload = Self::payload(&value, sequence, validity);
        IpnsRecord {
            name: keypair.peer_id(),
            public_key: keypair.public(),
            value,
            sequence,
            created_at,
            validity,
            signature: keypair.sign(&payload),
        }
    }

    fn payload(value: &Cid, sequence: u64, validity: SimDuration) -> Vec<u8> {
        let mut out = b"ipns-record:".to_vec();
        out.extend_from_slice(&value.to_bytes());
        out.extend_from_slice(&sequence.to_be_bytes());
        out.extend_from_slice(&validity.as_nanos().to_be_bytes());
        out
    }

    /// Validates the record at time `now`: the key must match the name
    /// (self-certification), the signature must verify, and the record
    /// must not have expired.
    pub fn validate(&self, now: SimTime) -> Result<(), IpnsError> {
        if !self.name.certifies(&self.public_key) {
            return Err(IpnsError::KeyMismatch);
        }
        let payload = Self::payload(&self.value, self.sequence, self.validity);
        self.public_key.verify(&payload, &self.signature).map_err(|_| IpnsError::BadSignature)?;
        if now.since(self.created_at) >= self.validity {
            return Err(IpnsError::Expired);
        }
        Ok(())
    }
}

impl IpnsRecord {
    /// Serializes the record to the opaque byte form that travels through
    /// the DHT's PUT_VALUE/GET_VALUE (§3.3). Layout:
    /// `name-mh | pubkey(32) | cid | seq | created_ns | validity_ns | sig(32)`,
    /// each variable field varint-length-prefixed.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(160);
        let name = self.name.to_bytes();
        varint::encode(name.len() as u64, &mut out);
        out.extend_from_slice(&name);
        out.extend_from_slice(&self.public_key.0);
        let cid = self.value.to_bytes();
        varint::encode(cid.len() as u64, &mut out);
        out.extend_from_slice(&cid);
        varint::encode(self.sequence, &mut out);
        varint::encode(self.created_at.as_nanos(), &mut out);
        varint::encode(self.validity.as_nanos(), &mut out);
        out.extend_from_slice(&self.signature.0);
        out
    }

    /// Parses the byte form back into a record (no validation — call
    /// [`IpnsRecord::validate`] after).
    pub fn decode(bytes: &[u8]) -> Option<IpnsRecord> {
        let mut s = bytes;
        let name_len = varint::take(&mut s).ok()? as usize;
        if s.len() < name_len {
            return None;
        }
        let name =
            PeerId::from_multihash(multiformats::Multihash::from_bytes(&s[..name_len]).ok()?);
        s = &s[name_len..];
        if s.len() < 32 {
            return None;
        }
        let mut pk = [0u8; 32];
        pk.copy_from_slice(&s[..32]);
        s = &s[32..];
        let cid_len = varint::take(&mut s).ok()? as usize;
        if s.len() < cid_len {
            return None;
        }
        let value = Cid::from_bytes(&s[..cid_len]).ok()?;
        s = &s[cid_len..];
        let sequence = varint::take(&mut s).ok()?;
        let created = varint::take(&mut s).ok()?;
        let validity = varint::take(&mut s).ok()?;
        if s.len() != 32 {
            return None;
        }
        let mut sig = [0u8; 32];
        sig.copy_from_slice(s);
        Some(IpnsRecord {
            name,
            public_key: PublicKey(pk),
            value,
            sequence,
            created_at: SimTime(created),
            validity: SimDuration::from_nanos(validity),
            signature: Signature(sig),
        })
    }
}

/// The DHT value selector for IPNS (plugged into
/// `kademlia::DhtConfig::value_selector`): a new record replaces a stored
/// one only if it decodes, its key matches its name, its signature
/// verifies, and its sequence number is strictly higher (or the stored
/// bytes are garbage).
pub fn ipns_value_selector(new: &[u8], old: &[u8]) -> bool {
    let Some(new_rec) = IpnsRecord::decode(new) else {
        return false;
    };
    // Structural validity (signature + key binding); expiry is judged at
    // resolve time, not store time.
    if !new_rec.name.certifies(&new_rec.public_key) {
        return false;
    }
    if new_rec
        .public_key
        .verify(
            &signable_payload(&new_rec.value, new_rec.sequence, new_rec.validity),
            &new_rec.signature,
        )
        .is_err()
    {
        return false;
    }
    match IpnsRecord::decode(old) {
        Some(old_rec) => new_rec.sequence > old_rec.sequence,
        None => true,
    }
}

fn signable_payload(value: &Cid, sequence: u64, validity: SimDuration) -> Vec<u8> {
    // Mirror of IpnsRecord::payload (kept private there).
    let mut out = b"ipns-record:".to_vec();
    out.extend_from_slice(&value.to_bytes());
    out.extend_from_slice(&sequence.to_be_bytes());
    out.extend_from_slice(&validity.as_nanos().to_be_bytes());
    out
}

/// Validation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpnsError {
    /// The embedded key does not hash to the record's name.
    KeyMismatch,
    /// The signature does not verify.
    BadSignature,
    /// The record's validity window has passed.
    Expired,
    /// A stored record has a sequence number >= the offered one.
    SequenceTooOld,
}

impl core::fmt::Display for IpnsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IpnsError::KeyMismatch => write!(f, "public key does not match IPNS name"),
            IpnsError::BadSignature => write!(f, "bad IPNS record signature"),
            IpnsError::Expired => write!(f, "IPNS record expired"),
            IpnsError::SequenceTooOld => write!(f, "IPNS record sequence is stale"),
        }
    }
}

impl std::error::Error for IpnsError {}

/// Store of the best-known record per name (kept by DHT servers near the
/// name's key, and by resolvers as a cache).
#[derive(Debug, Clone, Default)]
pub struct IpnsStore {
    records: HashMap<PeerId, IpnsRecord>,
}

impl IpnsStore {
    /// Creates an empty store.
    pub fn new() -> IpnsStore {
        IpnsStore::default()
    }

    /// Accepts a record if it validates and is newer than what is stored.
    pub fn put(&mut self, record: IpnsRecord, now: SimTime) -> Result<(), IpnsError> {
        record.validate(now)?;
        if let Some(existing) = self.records.get(&record.name) {
            if existing.sequence >= record.sequence {
                return Err(IpnsError::SequenceTooOld);
            }
        }
        self.records.insert(record.name.clone(), record);
        Ok(())
    }

    /// Resolves a name to its current record, dropping it if expired.
    pub fn resolve(&mut self, name: &PeerId, now: SimTime) -> Option<&IpnsRecord> {
        let expired = match self.records.get(name) {
            Some(r) => r.validate(now).is_err(),
            None => return None,
        };
        if expired {
            self.records.remove(name);
            return None;
        }
        self.records.get(name)
    }

    /// Number of names stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(n: u8) -> Cid {
        Cid::from_raw_data(&[n])
    }

    #[test]
    fn sign_and_validate() {
        let kp = Keypair::from_seed(1);
        let rec = IpnsRecord::sign(&kp, cid(1), 1, SimTime::ZERO, IPNS_VALIDITY);
        assert_eq!(rec.validate(SimTime::ZERO), Ok(()));
        assert_eq!(rec.name, kp.peer_id());
    }

    #[test]
    fn tampered_value_rejected() {
        let kp = Keypair::from_seed(1);
        let mut rec = IpnsRecord::sign(&kp, cid(1), 1, SimTime::ZERO, IPNS_VALIDITY);
        rec.value = cid(2);
        assert_eq!(rec.validate(SimTime::ZERO), Err(IpnsError::BadSignature));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp = Keypair::from_seed(1);
        let other = Keypair::from_seed(2);
        let mut rec = IpnsRecord::sign(&kp, cid(1), 1, SimTime::ZERO, IPNS_VALIDITY);
        rec.public_key = other.public();
        assert_eq!(rec.validate(SimTime::ZERO), Err(IpnsError::KeyMismatch));
    }

    #[test]
    fn expiry_enforced() {
        let kp = Keypair::from_seed(1);
        let rec = IpnsRecord::sign(&kp, cid(1), 1, SimTime::ZERO, SimDuration::from_hours(1));
        let later = SimTime::ZERO + SimDuration::from_hours(2);
        assert_eq!(rec.validate(later), Err(IpnsError::Expired));
    }

    #[test]
    fn store_prefers_newer_sequence() {
        let kp = Keypair::from_seed(1);
        let mut store = IpnsStore::new();
        let v1 = IpnsRecord::sign(&kp, cid(1), 1, SimTime::ZERO, IPNS_VALIDITY);
        let v2 = IpnsRecord::sign(&kp, cid(2), 2, SimTime::ZERO, IPNS_VALIDITY);
        store.put(v1.clone(), SimTime::ZERO).unwrap();
        store.put(v2.clone(), SimTime::ZERO).unwrap();
        assert_eq!(store.resolve(&kp.peer_id(), SimTime::ZERO).unwrap().value, cid(2));
        // Replaying the older record is rejected.
        assert_eq!(store.put(v1, SimTime::ZERO), Err(IpnsError::SequenceTooOld));
    }

    #[test]
    fn mutable_pointer_immutable_name() {
        // The §3.3 property: the name never changes while the value does.
        let kp = Keypair::from_seed(7);
        let mut store = IpnsStore::new();
        for seq in 1..=5u64 {
            let rec = IpnsRecord::sign(&kp, cid(seq as u8), seq, SimTime::ZERO, IPNS_VALIDITY);
            store.put(rec, SimTime::ZERO).unwrap();
            let resolved = store.resolve(&kp.peer_id(), SimTime::ZERO).unwrap();
            assert_eq!(resolved.name, kp.peer_id(), "name is stable");
            assert_eq!(resolved.value, cid(seq as u8), "value tracks updates");
        }
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn resolve_drops_expired() {
        let kp = Keypair::from_seed(1);
        let mut store = IpnsStore::new();
        let rec = IpnsRecord::sign(&kp, cid(1), 1, SimTime::ZERO, SimDuration::from_hours(1));
        store.put(rec, SimTime::ZERO).unwrap();
        assert!(store.resolve(&kp.peer_id(), SimTime::ZERO).is_some());
        let later = SimTime::ZERO + SimDuration::from_hours(3);
        assert!(store.resolve(&kp.peer_id(), later).is_none());
        assert!(store.is_empty());
    }
}
