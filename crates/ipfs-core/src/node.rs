//! One IPFS node: identity, DHT behaviour, Bitswap engine, blockstore,
//! address book, IPNS store.
//!
//! The node is a passive composition — the network driver ([`crate::netsim`])
//! or a real transport feeds it events. Content import (Figure 3, step 1)
//! happens here because it is purely local: "After content has been
//! imported into the local IPFS instance, it is neither replicated nor
//! uploaded to any external server" (§3.1).

use crate::addrbook::AddressBook;
use crate::config::NodeConfig;
use crate::ipns::{ipns_value_selector, IpnsStore};
use bitswap::BitswapEngine;
use bytes::Bytes;
use kademlia::behaviour::DhtMode;
use kademlia::routing::PeerInfo;
use kademlia::{DhtBehaviour, DhtConfig};
use merkledag::{BuildReport, DagBuilder, MemoryBlockStore, Resolver};
use multiformats::{Cid, Keypair, Multiaddr, PeerId};
use std::sync::Arc;

/// A complete IPFS node.
pub struct IpfsNode {
    keypair: Keypair,
    /// Shared identity: RPC handlers and publish batches clone the `Arc`,
    /// not the address list.
    info: Arc<PeerInfo>,
    /// The Kademlia behaviour (routing table, record store, queries).
    pub dht: DhtBehaviour,
    /// The Bitswap engine (sessions, ledgers).
    pub bitswap: BitswapEngine,
    /// Local content-addressed storage.
    pub store: MemoryBlockStore,
    /// Recently-seen peer addresses (capacity 900, §3.2).
    pub addr_book: AddressBook,
    /// IPNS records known to this node.
    pub ipns: IpnsStore,
    /// The node's configuration.
    pub config: NodeConfig,
}

impl IpfsNode {
    /// Creates a node from its keypair, advertised addresses and DHT mode.
    pub fn new(
        keypair: Keypair,
        addrs: Vec<Multiaddr>,
        mode: DhtMode,
        config: NodeConfig,
    ) -> IpfsNode {
        let info = Arc::new(PeerInfo::new(keypair.peer_id(), addrs));
        let dht = DhtBehaviour::new(
            Arc::clone(&info),
            DhtConfig {
                mode,
                alpha: config.alpha,
                k: config.replication,
                // IPNS records travelling through PUT_VALUE are arbitrated
                // by signature validity + sequence number (§3.3).
                value_selector: Some(ipns_value_selector),
                provider_expiry: config.expiry_interval,
            },
        );
        IpfsNode {
            keypair,
            info,
            dht,
            bitswap: BitswapEngine::new(),
            store: MemoryBlockStore::new(),
            addr_book: AddressBook::new(config.addrbook_capacity),
            ipns: IpnsStore::new(),
            config,
        }
    }

    /// The node's PeerID.
    pub fn peer_id(&self) -> &PeerId {
        &self.info.peer
    }

    /// The node's identity + addresses.
    pub fn info(&self) -> &Arc<PeerInfo> {
        &self.info
    }

    /// The node's keypair (for IPNS signing).
    pub fn keypair(&self) -> &Keypair {
        &self.keypair
    }

    /// Imports content into the local store: chunk (256 kiB), build the
    /// Merkle DAG, return the root CID (Figure 3, step 1). No network I/O.
    pub fn add_content(&mut self, data: &Bytes) -> BuildReport {
        let chunker = merkledag::FixedSizeChunker::new(self.config.chunk_size);
        DagBuilder::new(&mut self.store)
            .add_with_chunker(data, &chunker)
            .expect("local import cannot fail")
    }

    /// Reads a fully fetched file back out of the local store, verifying
    /// every block.
    pub fn read_content(&mut self, root: &Cid) -> Result<Bytes, merkledag::Error> {
        Resolver::new(&mut self.store).read_file(root)
    }

    /// Whether the node currently holds every block of `root`'s DAG.
    pub fn has_content(&mut self, root: &Cid) -> bool {
        Resolver::new(&mut self.store).block_list(root).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(seed: u64) -> IpfsNode {
        IpfsNode::new(
            Keypair::from_seed(seed),
            vec!["/ip4/10.1.1.1/tcp/4001".parse().unwrap()],
            DhtMode::Server,
            NodeConfig::default(),
        )
    }

    #[test]
    fn import_then_read_roundtrip() {
        let mut n = node(1);
        let data = Bytes::from(vec![42u8; 700_000]); // ~0.7 MB -> 3 chunks
        let report = n.add_content(&data);
        assert_eq!(report.chunks, 3);
        assert!(n.has_content(&report.root));
        assert_eq!(n.read_content(&report.root).unwrap(), data);
    }

    #[test]
    fn import_is_local_only() {
        // No DHT queries, no bitswap traffic result from an import.
        let mut n = node(1);
        n.add_content(&Bytes::from_static(b"tiny"));
        assert_eq!(n.bitswap.ledger.total_sent(), 0);
        assert_eq!(n.dht.store().provider_entry_count(), 0);
    }

    #[test]
    fn half_mb_object_is_two_chunks() {
        // The paper's benchmark object: 0.5 MB (§4.3).
        let mut n = node(2);
        let report = n.add_content(&Bytes::from(vec![7u8; 512 * 1024]));
        assert_eq!(report.chunks, 2);
        assert_eq!(report.branch_nodes, 1);
    }

    #[test]
    fn identity_is_stable() {
        let a = node(3);
        let b = node(3);
        assert_eq!(a.peer_id(), b.peer_id());
        assert!(a.peer_id().certifies(&a.keypair().public()));
    }

    #[test]
    fn missing_content_detected() {
        let mut n = node(4);
        let foreign = Cid::from_raw_data(b"not here");
        assert!(!n.has_content(&foreign));
        assert!(n.read_content(&foreign).is_err());
    }
}
