//! AutoNAT: deciding whether a node is a DHT server or client.
//!
//! Paper §2.3: "new peers join by default as clients and immediately ask
//! other peers in the network to initiate connections back to them. If
//! more than three peers can connect to the newly joining peer, then the
//! new peer upgrades its participation to act as a server node. If more
//! than three peers cannot connect, the peer continues as a client."

/// Number of confirming dial-backs required either way.
pub const AUTONAT_THRESHOLD: usize = 3;

/// Outcome of the AutoNAT probe phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutonatVerdict {
    /// Still collecting dial-back results.
    Undecided,
    /// Publicly reachable: upgrade to DHT server.
    Public,
    /// Not reachable: stay a DHT client.
    Private,
}

/// Tracks dial-back results for a newly joined node.
#[derive(Debug, Clone, Copy, Default)]
pub struct AutonatState {
    successes: usize,
    failures: usize,
}

impl AutonatState {
    /// Fresh state: the node starts as a client (§2.3).
    pub fn new() -> AutonatState {
        AutonatState::default()
    }

    /// Records one dial-back attempt result and returns the verdict so far.
    pub fn record(&mut self, connected: bool) -> AutonatVerdict {
        if connected {
            self.successes += 1;
        } else {
            self.failures += 1;
        }
        self.verdict()
    }

    /// Current verdict: more than [`AUTONAT_THRESHOLD`] outcomes of one
    /// kind decide.
    pub fn verdict(&self) -> AutonatVerdict {
        if self.successes > AUTONAT_THRESHOLD {
            AutonatVerdict::Public
        } else if self.failures > AUTONAT_THRESHOLD {
            AutonatVerdict::Private
        } else {
            AutonatVerdict::Undecided
        }
    }

    /// Counters (successes, failures).
    pub fn counts(&self) -> (usize, usize) {
        (self.successes, self.failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_undecided() {
        assert_eq!(AutonatState::new().verdict(), AutonatVerdict::Undecided);
    }

    #[test]
    fn upgrades_after_more_than_three_successes() {
        let mut s = AutonatState::new();
        for _ in 0..3 {
            assert_eq!(s.record(true), AutonatVerdict::Undecided);
        }
        assert_eq!(s.record(true), AutonatVerdict::Public);
    }

    #[test]
    fn stays_private_after_more_than_three_failures() {
        let mut s = AutonatState::new();
        for _ in 0..3 {
            assert_eq!(s.record(false), AutonatVerdict::Undecided);
        }
        assert_eq!(s.record(false), AutonatVerdict::Private);
    }

    #[test]
    fn mixed_results_need_majority_of_one_kind() {
        let mut s = AutonatState::new();
        s.record(true);
        s.record(false);
        s.record(true);
        s.record(false);
        s.record(true);
        assert_eq!(s.verdict(), AutonatVerdict::Undecided);
        assert_eq!(s.record(true), AutonatVerdict::Public);
        assert_eq!(s.counts(), (4, 2));
    }
}
