//! The per-transfer session layer: multi-peer swarm download of one DAG.
//!
//! A [`Session`] owns the client half of §3.2's exchange for a single
//! fetch: it broadcasts WANT-HAVE to its candidate peers, tracks each
//! peer's response latency with an exponentially-decayed score, splits
//! live wants across the best peers as WANT-BLOCK (with a configurable
//! duplicate factor, à la go-bitswap / iroh's session splitter), handles
//! HAVE / DONT_HAVE bookkeeping, re-queues wants when a peer reneges or
//! crashes, and accounts duplicate blocks received.
//!
//! The session is pure bookkeeping: every method returns `(PeerId,
//! Message)` pairs for [`crate::BitswapEngine`] to stamp into ledgers and
//! hand to the driver. All internal collections iterate in insertion
//! order (`Vec`, never a hashed set), so the message sequence — and
//! therefore the simulator's RNG stream — is a pure function of the
//! call sequence.
//!
//! **Degradation guarantee:** with one candidate peer and
//! `duplicate_factor == 1` (the defaults), the session emits exactly the
//! message sequence of the pre-session single-provider engine: a direct
//! WANT-BLOCK per missing block to that peer, children requested in link
//! order as branch nodes decode. The fig10 small-object retrieval path is
//! byte-identical.

use crate::message::Message;
use multiformats::{Cid, PeerId};

/// Tuning knobs for a session (the paper's §3.2 exchange plus the
/// go-bitswap session extensions).
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// How many peers each live want is sent to as WANT-BLOCK. `1` fetches
    /// every block exactly once; higher values trade duplicate traffic for
    /// tail-latency robustness (go-bitswap's "duplicate factor").
    pub duplicate_factor: usize,
    /// Maximum number of candidate peers a WANT-HAVE is broadcast to
    /// (go-bitswap's `BROADCAST_LIVE_WANTS_LIMIT`).
    pub broadcast_limit: usize,
    /// Weight of the newest latency sample in the exponentially-decayed
    /// per-peer response score (`score = alpha*sample + (1-alpha)*score`).
    pub ewma_alpha: f64,
    /// Cap on WANT-BLOCKs outstanding at any one peer when the swarm has
    /// several candidates (go-bitswap's live-want trickle). Wants beyond
    /// the aggregate budget wait in a backlog and are dispatched as blocks
    /// arrive, so load keeps rebalancing toward the peers that actually
    /// deliver. Single-candidate sessions ignore the budget (the legacy
    /// direct path).
    pub max_inflight_per_peer: usize,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            duplicate_factor: 1,
            broadcast_limit: 64,
            ewma_alpha: 0.5,
            max_inflight_per_peer: 4,
        }
    }
}

/// Per-peer bookkeeping inside one session.
#[derive(Debug, Clone)]
struct PeerState {
    id: PeerId,
    /// Exponentially-decayed response latency in nanoseconds (0 until the
    /// first sample: optimistic, so untried peers get work).
    score_nanos: f64,
    /// Latency samples folded into the score.
    samples: u64,
    /// Blocks this peer delivered.
    blocks: u64,
    /// WANT-BLOCKs currently outstanding at this peer.
    inflight: usize,
    /// Peer answered HAVE at least once.
    saw_have: bool,
    /// Peer crashed / disconnected: never picked again.
    removed: bool,
}

impl PeerState {
    fn new(id: PeerId) -> PeerState {
        PeerState {
            id,
            score_nanos: 0.0,
            samples: 0,
            blocks: 0,
            inflight: 0,
            saw_have: false,
            removed: false,
        }
    }

    /// Ready to receive direct WANT-BLOCKs: proved responsive and alive.
    fn ready(&self) -> bool {
        !self.removed && (self.saw_have || self.blocks > 0)
    }
}

/// Progress of one wanted block.
#[derive(Debug, Clone)]
enum WantPhase {
    /// WANT-HAVE broadcast; waiting on answers from these peers.
    Probing { pending: Vec<PeerId>, havers: Vec<PeerId> },
    /// WANT-BLOCK sent to each `(peer, sent_at_nanos)` target.
    Fetching { targets: Vec<(PeerId, u64)>, fallback: Vec<PeerId> },
    /// Ready peers exist but are all at their in-flight budget; the want
    /// waits in the backlog until capacity frees up.
    Pending,
    /// Every reachable peer denied having the block.
    Stalled,
}

/// Counters a driver exports when the session ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Blocks received and verified.
    pub blocks_received: u64,
    /// Duplicate / unsolicited blocks discarded.
    pub duplicate_blocks: u64,
    /// WANT-BLOCK requests sent.
    pub wants_sent: u64,
    /// Wants re-queued to another peer after a renege or crash.
    pub reroutes: u64,
}

/// One client fetch session (see the module docs).
#[derive(Debug, Clone)]
pub struct Session {
    cfg: SessionConfig,
    peers: Vec<PeerState>,
    /// Outstanding wants in insertion order (deterministic iteration; the
    /// set stays small — one entry per in-flight block of the DAG).
    wants: Vec<(Cid, WantPhase)>,
    /// Blocks already delivered to this session, for duplicate
    /// attribution after the want is gone.
    done: std::collections::HashSet<Cid>,
    stats: SessionStats,
    complete: bool,
    /// `(peer, latency_nanos)` response samples not yet drained.
    latency_samples: Vec<(PeerId, u64)>,
}

impl Session {
    /// A session over `peers` (insertion order is the deterministic
    /// tiebreak everywhere).
    pub fn new(peers: Vec<PeerId>, cfg: SessionConfig) -> Session {
        Session {
            cfg,
            peers: peers.into_iter().map(PeerState::new).collect(),
            wants: Vec::new(),
            done: std::collections::HashSet::new(),
            stats: SessionStats::default(),
            complete: false,
            latency_samples: Vec::new(),
        }
    }

    // ---- accessors ----------------------------------------------------

    /// Outstanding want count.
    pub fn outstanding(&self) -> usize {
        self.wants.len()
    }

    /// Whether every want has been satisfied.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Marks the session complete (driver calls once wants run dry).
    pub fn set_complete(&mut self) {
        self.complete = true;
    }

    /// Exportable counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Whether `cid` is an outstanding want.
    pub fn has_want(&self, cid: &Cid) -> bool {
        self.wants.iter().any(|(c, _)| c == cid)
    }

    /// Whether `cid` was already delivered to this session.
    pub fn was_delivered(&self, cid: &Cid) -> bool {
        self.done.contains(cid)
    }

    /// Counts a duplicate block against this session.
    pub fn count_duplicate(&mut self) {
        self.stats.duplicate_blocks += 1;
    }

    /// Peers that answered HAVE or delivered blocks — the candidates worth
    /// carrying into a follow-up session when a probe times out (§3.2's
    /// opportunistic phase feeding the DHT phase instead of being thrown
    /// away).
    pub fn responsive_peers(&self) -> Vec<PeerId> {
        self.peers.iter().filter(|p| p.ready()).map(|p| p.id.clone()).collect()
    }

    /// Number of candidate peers (including removed ones).
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Drains the accumulated `(peer, latency_nanos)` response samples.
    pub fn take_latency_samples(&mut self) -> Vec<(PeerId, u64)> {
        std::mem::take(&mut self.latency_samples)
    }

    /// The exponentially-decayed latency score for `peer`, if known.
    pub fn peer_score_nanos(&self, peer: &PeerId) -> Option<f64> {
        self.peers.iter().find(|p| p.id == *peer).map(|p| p.score_nanos)
    }

    fn peer_mut(&mut self, id: &PeerId) -> Option<&mut PeerState> {
        self.peers.iter_mut().find(|p| p.id == *id)
    }

    fn active_peers(&self) -> usize {
        self.peers.iter().filter(|p| !p.removed).count()
    }

    fn want_mut(&mut self, cid: &Cid) -> Option<&mut WantPhase> {
        self.wants.iter_mut().find(|(c, _)| c == cid).map(|(_, s)| s)
    }

    fn remove_want(&mut self, cid: &Cid) -> Option<WantPhase> {
        let i = self.wants.iter().position(|(c, _)| c == cid)?;
        Some(self.wants.remove(i).1)
    }

    // ---- the splitter -------------------------------------------------

    /// Picks up to `duplicate_factor` peers for a fresh want: ready peers
    /// ordered by (fewest in-flight wants, best decayed latency, insertion
    /// order). Join-shortest-queue keeps every provider's uplink busy
    /// while the score steers ties toward the fastest responders. With
    /// `respect_budget`, peers at their in-flight cap are skipped (fresh
    /// wants queue instead); re-routes pass `false` — a displaced want
    /// must land somewhere.
    fn pick_targets(&mut self, exclude: &[PeerId], respect_budget: bool) -> Vec<PeerId> {
        let budget = self.cfg.max_inflight_per_peer.max(1);
        let mut ready: Vec<usize> = (0..self.peers.len())
            .filter(|&i| self.peers[i].ready() && !exclude.contains(&self.peers[i].id))
            .filter(|&i| !respect_budget || self.peers[i].inflight < budget)
            .collect();
        ready.sort_by(|&a, &b| {
            let pa = &self.peers[a];
            let pb = &self.peers[b];
            pa.inflight
                .cmp(&pb.inflight)
                .then(pa.score_nanos.total_cmp(&pb.score_nanos))
                .then(a.cmp(&b))
        });
        ready.truncate(self.cfg.duplicate_factor.max(1));
        ready.iter().map(|&i| self.peers[i].id.clone()).collect()
    }

    fn target(&mut self, cid: &Cid, to: PeerId, now: u64, out: &mut Vec<(PeerId, Message)>) {
        if let Some(p) = self.peer_mut(&to) {
            p.inflight += 1;
        }
        self.stats.wants_sent += 1;
        out.push((to.clone(), Message::WantBlock(cid.clone())));
        match self.want_mut(cid) {
            Some(WantPhase::Fetching { targets, .. }) => targets.push((to, now)),
            Some(state) => {
                *state = WantPhase::Fetching { targets: vec![(to, now)], fallback: Vec::new() }
            }
            None => {}
        }
    }

    /// Dispatches backlogged wants (in insertion order) to whatever ready
    /// capacity exists right now. Called whenever capacity frees (a block
    /// or DONT_HAVE arrives) or the ready set grows (a HAVE arrives).
    fn drain_pending(&mut self, now: u64, out: &mut Vec<(PeerId, Message)>) {
        loop {
            let next = self
                .wants
                .iter()
                .find(|(_, ph)| matches!(ph, WantPhase::Pending))
                .map(|(c, _)| c.clone());
            let Some(cid) = next else { return };
            let picks = self.pick_targets(&[], true);
            if picks.is_empty() {
                return;
            }
            if let Some(state) = self.want_mut(&cid) {
                *state = WantPhase::Fetching { targets: Vec::new(), fallback: Vec::new() };
            }
            for to in picks {
                self.target(&cid, to, now, out);
            }
        }
    }

    // ---- driver entry points ------------------------------------------

    /// Registers a want for one *missing* block and routes it: direct
    /// WANT-BLOCK when a single candidate or ready peers exist, WANT-HAVE
    /// broadcast otherwise. Returns the messages to send; `stalled` is set
    /// when no peer can be asked at all.
    pub fn want_block(&mut self, cid: Cid, now: u64, stalled: &mut bool) -> Vec<(PeerId, Message)> {
        let mut out = Vec::new();
        if self.has_want(&cid) {
            return out;
        }
        if self.active_peers() == 0 {
            self.wants.push((cid, WantPhase::Stalled));
            *stalled = true;
            return out;
        }
        let direct = if self.active_peers() == 1 {
            // A single known provider: skip the WANT-HAVE round trip and
            // request directly (the old single-provider path, preserved
            // byte-for-byte — no budget applies).
            self.peers.iter().find(|p| !p.removed).map(|p| vec![p.id.clone()])
        } else {
            let picks = self.pick_targets(&[], true);
            if picks.is_empty() {
                if self.peers.iter().any(|p| p.ready()) {
                    // Every ready peer is at its in-flight budget: backlog
                    // the want; it is dispatched as capacity frees.
                    self.wants.push((cid, WantPhase::Pending));
                    return out;
                }
                None
            } else {
                Some(picks)
            }
        };
        match direct {
            Some(targets) => {
                self.wants.push((
                    cid.clone(),
                    WantPhase::Fetching { targets: Vec::new(), fallback: Vec::new() },
                ));
                for t in targets {
                    self.target(&cid, t, now, &mut out);
                }
            }
            None => {
                // No peer has proved itself yet: probe everyone (§3.2's
                // WANT-HAVE round), bounded by the broadcast limit.
                let pending: Vec<PeerId> = self
                    .peers
                    .iter()
                    .filter(|p| !p.removed)
                    .take(self.cfg.broadcast_limit.max(1))
                    .map(|p| p.id.clone())
                    .collect();
                for p in &pending {
                    out.push((p.clone(), Message::WantHave(cid.clone())));
                }
                self.wants.push((cid, WantPhase::Probing { pending, havers: Vec::new() }));
            }
        }
        out
    }

    /// Adds a candidate peer mid-transfer: re-probes stalled wants through
    /// it and announces every other live want as WANT-HAVE, so a
    /// late-joining swarm member can advertise what it holds and start
    /// absorbing load (go-bitswap sends discovered peers its live
    /// wantlist the same way).
    pub fn add_peer(&mut self, peer: PeerId) -> Vec<(PeerId, Message)> {
        let mut out = Vec::new();
        match self.peer_mut(&peer) {
            Some(p) if p.removed => {
                // A crashed peer dialing back in starts from scratch.
                p.removed = false;
            }
            // Already a live candidate (e.g. seeded at session start,
            // dial completed later): nothing to announce.
            Some(_) => return out,
            None => self.peers.push(PeerState::new(peer.clone())),
        }
        for (cid, state) in self.wants.iter_mut() {
            match state {
                WantPhase::Stalled => {
                    *state = WantPhase::Probing { pending: vec![peer.clone()], havers: Vec::new() };
                    out.push((peer.clone(), Message::WantHave(cid.clone())));
                }
                WantPhase::Probing { pending, .. } => {
                    if !pending.contains(&peer) {
                        pending.push(peer.clone());
                        out.push((peer.clone(), Message::WantHave(cid.clone())));
                    }
                }
                WantPhase::Fetching { .. } | WantPhase::Pending => {
                    out.push((peer.clone(), Message::WantHave(cid.clone())));
                }
            }
        }
        out
    }

    /// HAVE from `from`: first answer wins the WANT-BLOCK (§3.2); up to
    /// `duplicate_factor` havers are engaged, later ones become fail-over
    /// candidates.
    pub fn on_have(&mut self, from: &PeerId, cid: &Cid, now: u64) -> Vec<(PeerId, Message)> {
        let mut out = Vec::new();
        // A HAVE from outside the live candidate set — a peer that crashed
        // or reneged while its answer was in flight — must not re-engage
        // it: the link is gone, and a WANT-BLOCK sent there would hang
        // until the fetch guard fires. If the peer genuinely comes back,
        // `add_peer` resurrects it first.
        match self.peer_mut(from) {
            Some(p) if !p.removed => p.saw_have = true,
            _ => return out,
        }
        let dup = self.cfg.duplicate_factor.max(1);
        let engage = match self.want_mut(cid) {
            None => false,
            Some(state) => match state {
                WantPhase::Probing { havers, .. } => {
                    if !havers.contains(from) {
                        havers.push(from.clone());
                    }
                    true
                }
                WantPhase::Fetching { targets, fallback } => {
                    if targets.iter().any(|(p, _)| p == from) {
                        false
                    } else if targets.len() < dup {
                        true
                    } else {
                        if !fallback.contains(from) {
                            fallback.push(from.clone());
                        }
                        false
                    }
                }
                WantPhase::Pending | WantPhase::Stalled => {
                    // The announcer definitely holds the block: engage it
                    // directly, backlog or not.
                    *state = WantPhase::Fetching { targets: Vec::new(), fallback: Vec::new() };
                    true
                }
            },
        };
        if engage {
            self.target(cid, from.clone(), now, &mut out);
        }
        // A new HAVE may have grown the ready set: give the backlog a shot.
        self.drain_pending(now, &mut out);
        out
    }

    /// DONT_HAVE from `from`. Probing wants shrink their pending set;
    /// fetching wants fail over to the next haver or ready peer. Returns
    /// the re-requests plus whether the want is now stalled (every
    /// reachable peer denied — the caller surfaces `WantFailed`).
    pub fn on_dont_have(
        &mut self,
        from: &PeerId,
        cid: &Cid,
        now: u64,
    ) -> (Vec<(PeerId, Message)>, bool) {
        let mut out = Vec::new();
        let mut stalled = false;
        let mut dropped_target = false;
        match self.want_mut(cid) {
            None => {}
            Some(state) => match state {
                WantPhase::Probing { pending, havers } => {
                    pending.retain(|p| p != from);
                    if pending.is_empty() && havers.is_empty() {
                        *state = WantPhase::Stalled;
                        stalled = true;
                    }
                }
                WantPhase::Fetching { targets, fallback } => {
                    let before = targets.len();
                    targets.retain(|(p, _)| p != from);
                    if targets.len() != before {
                        fallback.retain(|p| p != from);
                        dropped_target = true;
                    }
                }
                WantPhase::Pending | WantPhase::Stalled => {}
            },
        }
        if dropped_target {
            if let Some(p) = self.peer_mut(from) {
                p.inflight = p.inflight.saturating_sub(1);
            }
            stalled = self.refetch(cid, from, now, &mut out);
            // The denier's capacity freed up: dispatch backlogged wants.
            self.drain_pending(now, &mut out);
        }
        (out, stalled)
    }

    /// Re-routes a fetching want away from `failed`: fallback havers
    /// first (the old fail-over order), then the splitter over the
    /// remaining ready peers. Returns `true` when nobody is left.
    fn refetch(
        &mut self,
        cid: &Cid,
        failed: &PeerId,
        now: u64,
        out: &mut Vec<(PeerId, Message)>,
    ) -> bool {
        let (already, mut exclude) = match self.want_mut(cid) {
            Some(WantPhase::Fetching { targets, fallback }) => {
                let next = fallback.first().cloned();
                if let Some(n) = &next {
                    fallback.retain(|p| p != n);
                }
                (next, targets.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>())
            }
            _ => return false,
        };
        exclude.push(failed.clone());
        let next = already.or_else(|| self.pick_targets(&exclude, false).into_iter().next());
        match next {
            Some(to) => {
                self.stats.reroutes += 1;
                self.target(cid, to, now, out);
                false
            }
            None => {
                let still_fetching = match self.want_mut(cid) {
                    Some(WantPhase::Fetching { targets, .. }) => !targets.is_empty(),
                    _ => true,
                };
                if still_fetching {
                    return false;
                }
                if let Some(state) = self.want_mut(cid) {
                    *state = WantPhase::Stalled;
                }
                true
            }
        }
    }

    /// A verified block for an outstanding want arrived from `from`.
    /// Updates the peer's decayed latency score, cancels the want at any
    /// other engaged target, and returns the CANCELs to send.
    pub fn on_block(&mut self, from: &PeerId, cid: &Cid, now: u64) -> Vec<(PeerId, Message)> {
        let mut out = Vec::new();
        let Some(state) = self.remove_want(cid) else {
            return out;
        };
        self.stats.blocks_received += 1;
        self.done.insert(cid.clone());
        let mut sample: Option<u64> = None;
        if let WantPhase::Fetching { targets, .. } = &state {
            for (p, sent_at) in targets {
                if p == from {
                    sample = Some(now.saturating_sub(*sent_at));
                } else {
                    // Duplicate-factor bookkeeping: withdraw the want from
                    // the slower targets.
                    out.push((p.clone(), Message::Cancel(cid.clone())));
                }
                if let Some(peer) = self.peer_mut(p) {
                    peer.inflight = peer.inflight.saturating_sub(1);
                }
            }
        }
        let alpha = self.cfg.ewma_alpha;
        if let Some(p) = self.peer_mut(from) {
            p.blocks += 1;
            if let Some(s) = sample {
                p.score_nanos = if p.samples == 0 {
                    s as f64
                } else {
                    alpha * s as f64 + (1.0 - alpha) * p.score_nanos
                };
                p.samples += 1;
            }
        }
        if let Some(s) = sample {
            self.latency_samples.push((from.clone(), s));
        }
        // Capacity freed at every peer the want was in flight to: pull the
        // next backlogged wants forward (this is where the splitter keeps
        // rebalancing toward the peers that actually deliver).
        self.drain_pending(now, &mut out);
        out
    }

    /// A peer crashed or disconnected: drop it from every want and
    /// re-queue its in-flight wants on the survivors. Returns the
    /// re-requests plus the wants that now cannot proceed at all.
    pub fn remove_peer(&mut self, peer: &PeerId, now: u64) -> (Vec<(PeerId, Message)>, Vec<Cid>) {
        let mut out = Vec::new();
        let mut failed = Vec::new();
        match self.peer_mut(peer) {
            Some(p) => {
                p.removed = true;
                p.inflight = 0;
            }
            None => return (out, failed),
        }
        let active: Vec<PeerId> = self
            .peers
            .iter()
            .filter(|p| !p.removed)
            .take(self.cfg.broadcast_limit.max(1))
            .map(|p| p.id.clone())
            .collect();
        let any_ready = self.peers.iter().any(|p| p.ready());
        let cids: Vec<Cid> = self.wants.iter().map(|(c, _)| c.clone()).collect();
        for cid in cids {
            let mut dropped_target = false;
            match self.want_mut(&cid) {
                None => {}
                Some(state) => match state {
                    WantPhase::Probing { pending, havers } => {
                        pending.retain(|p| p != peer);
                        havers.retain(|p| p != peer);
                        if pending.is_empty() && havers.is_empty() {
                            *state = WantPhase::Stalled;
                            failed.push(cid.clone());
                        }
                    }
                    WantPhase::Fetching { targets, fallback } => {
                        let before = targets.len();
                        targets.retain(|(p, _)| p != peer);
                        fallback.retain(|p| p != peer);
                        dropped_target = targets.len() != before;
                    }
                    WantPhase::Pending => {
                        if active.is_empty() {
                            *state = WantPhase::Stalled;
                            failed.push(cid.clone());
                        } else if !any_ready {
                            // The backlog's capacity source died with the
                            // last ready peer: fall back to probing the
                            // survivors so the want can make progress.
                            for p in &active {
                                out.push((p.clone(), Message::WantHave(cid.clone())));
                            }
                            *state =
                                WantPhase::Probing { pending: active.clone(), havers: Vec::new() };
                        }
                    }
                    WantPhase::Stalled => {}
                },
            }
            if dropped_target && self.refetch(&cid, peer, now, &mut out) {
                failed.push(cid.clone());
            }
        }
        (out, failed)
    }

    /// Tears the session down, returning CANCELs for everything in flight.
    pub fn cancel(self) -> Vec<(PeerId, Message)> {
        let mut out = Vec::new();
        for (cid, state) in self.wants {
            match state {
                WantPhase::Probing { pending, .. } => {
                    for p in pending {
                        out.push((p, Message::Cancel(cid.clone())));
                    }
                }
                WantPhase::Fetching { targets, .. } => {
                    for (p, _) in targets {
                        out.push((p, Message::Cancel(cid.clone())));
                    }
                }
                WantPhase::Pending | WantPhase::Stalled => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(seed: u64) -> PeerId {
        multiformats::Keypair::from_seed(seed).peer_id()
    }

    fn cid(tag: &str) -> Cid {
        Cid::from_raw_data(tag.as_bytes())
    }

    fn want_blocks(msgs: &[(PeerId, Message)]) -> Vec<PeerId> {
        msgs.iter()
            .filter(|(_, m)| matches!(m, Message::WantBlock(_)))
            .map(|(p, _)| p.clone())
            .collect()
    }

    #[test]
    fn single_peer_goes_straight_to_want_block() {
        let mut s = Session::new(vec![peer(1)], SessionConfig::default());
        let mut stalled = false;
        let out = s.want_block(cid("a"), 0, &mut stalled);
        assert!(!stalled);
        assert_eq!(out, vec![(peer(1), Message::WantBlock(cid("a")))]);
    }

    #[test]
    fn multi_peer_broadcasts_want_have_in_insertion_order() {
        let mut s = Session::new(vec![peer(1), peer(2), peer(3)], SessionConfig::default());
        let mut stalled = false;
        let out = s.want_block(cid("a"), 0, &mut stalled);
        assert_eq!(
            out.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>(),
            vec![peer(1), peer(2), peer(3)]
        );
        assert!(out.iter().all(|(_, m)| matches!(m, Message::WantHave(_))));
    }

    #[test]
    fn splitter_spreads_wants_over_ready_peers() {
        let mut s = Session::new(vec![peer(1), peer(2)], SessionConfig::default());
        let mut stalled = false;
        s.want_block(cid("root"), 0, &mut stalled);
        // Both answer HAVE: first wins the root WANT-BLOCK.
        s.on_have(&peer(1), &cid("root"), 10);
        s.on_have(&peer(2), &cid("root"), 11);
        // Root arrives; four children discovered. Join-shortest-queue must
        // alternate across the two ready peers.
        s.on_block(&peer(1), &cid("root"), 20);
        let mut assigned = Vec::new();
        for name in ["c1", "c2", "c3", "c4"] {
            let out = s.want_block(cid(name), 30, &mut stalled);
            assigned.extend(want_blocks(&out));
        }
        let to1 = assigned.iter().filter(|p| **p == peer(1)).count();
        let to2 = assigned.iter().filter(|p| **p == peer(2)).count();
        assert_eq!((to1, to2), (2, 2), "JSQ must balance: {assigned:?}");
    }

    #[test]
    fn duplicate_factor_engages_multiple_peers_and_cancels_losers() {
        let cfg = SessionConfig { duplicate_factor: 2, ..SessionConfig::default() };
        let mut s = Session::new(vec![peer(1), peer(2), peer(3)], cfg);
        let mut stalled = false;
        s.want_block(cid("a"), 0, &mut stalled);
        // Two HAVEs: both get the WANT-BLOCK (duplicate factor 2).
        let o1 = s.on_have(&peer(1), &cid("a"), 5);
        let o2 = s.on_have(&peer(2), &cid("a"), 6);
        assert_eq!(want_blocks(&o1), vec![peer(1)]);
        assert_eq!(want_blocks(&o2), vec![peer(2)]);
        // Third HAVE is a fallback only.
        let o3 = s.on_have(&peer(3), &cid("a"), 7);
        assert!(o3.is_empty());
        // Peer 2 wins the race: the want at peer 1 is cancelled.
        let cancels = s.on_block(&peer(2), &cid("a"), 30);
        assert_eq!(cancels, vec![(peer(1), Message::Cancel(cid("a")))]);
        assert_eq!(s.stats().wants_sent, 2);
    }

    #[test]
    fn ewma_score_prefers_faster_peer() {
        let mut s = Session::new(vec![peer(1), peer(2)], SessionConfig::default());
        let mut stalled = false;
        for (name, from, rtt) in [("a", 1u64, 800u64), ("b", 2, 100)] {
            s.want_block(cid(name), 0, &mut stalled);
            s.on_have(&peer(from), &cid(name), 0);
            s.on_block(&peer(from), &cid(name), rtt);
        }
        assert!(s.peer_score_nanos(&peer(2)).unwrap() < s.peer_score_nanos(&peer(1)).unwrap());
        // Equal in-flight: the splitter must prefer the faster peer 2.
        let out = s.want_block(cid("c"), 1000, &mut stalled);
        assert_eq!(want_blocks(&out), vec![peer(2)]);
    }

    #[test]
    fn remove_peer_reroutes_inflight_wants() {
        let mut s = Session::new(vec![peer(1), peer(2)], SessionConfig::default());
        let mut stalled = false;
        s.want_block(cid("a"), 0, &mut stalled);
        s.on_have(&peer(1), &cid("a"), 1);
        s.on_have(&peer(2), &cid("a"), 2);
        // Peer 1 holds the WANT-BLOCK and crashes: the want must re-queue
        // to peer 2 (the recorded haver).
        let (out, failed) = s.remove_peer(&peer(1), 50);
        assert!(failed.is_empty());
        assert_eq!(want_blocks(&out), vec![peer(2)]);
        assert_eq!(s.stats().reroutes, 1);
    }

    #[test]
    fn remove_last_peer_fails_the_want() {
        let mut s = Session::new(vec![peer(1)], SessionConfig::default());
        let mut stalled = false;
        s.want_block(cid("a"), 0, &mut stalled);
        let (out, failed) = s.remove_peer(&peer(1), 5);
        assert!(out.is_empty());
        assert_eq!(failed, vec![cid("a")]);
    }

    #[test]
    fn responsive_peers_survive_for_the_next_phase() {
        let mut s = Session::new(vec![peer(1), peer(2), peer(3)], SessionConfig::default());
        let mut stalled = false;
        s.want_block(cid("a"), 0, &mut stalled);
        s.on_have(&peer(2), &cid("a"), 1);
        let (_, _) = s.on_dont_have(&peer(1), &cid("a"), 2);
        assert_eq!(s.responsive_peers(), vec![peer(2)]);
    }

    #[test]
    fn duplicate_attribution_after_delivery() {
        let mut s = Session::new(vec![peer(1), peer(2)], SessionConfig::default());
        let mut stalled = false;
        s.want_block(cid("a"), 0, &mut stalled);
        s.on_have(&peer(1), &cid("a"), 1);
        s.on_block(&peer(1), &cid("a"), 9);
        assert!(s.was_delivered(&cid("a")));
        s.count_duplicate();
        assert_eq!(s.stats().duplicate_blocks, 1);
        assert_eq!(s.stats().blocks_received, 1);
    }

    #[test]
    fn inflight_budget_backlogs_and_drains() {
        let cfg = SessionConfig { max_inflight_per_peer: 2, ..SessionConfig::default() };
        let mut s = Session::new(vec![peer(1), peer(2)], cfg);
        let mut stalled = false;
        s.want_block(cid("root"), 0, &mut stalled);
        s.on_have(&peer(1), &cid("root"), 1);
        s.on_have(&peer(2), &cid("root"), 2);
        s.on_block(&peer(1), &cid("root"), 10);
        // Five children against an aggregate budget of 4: exactly four
        // WANT-BLOCKs go out, the fifth waits in the backlog.
        let mut sent = Vec::new();
        for name in ["c1", "c2", "c3", "c4", "c5"] {
            sent.extend(want_blocks(&s.want_block(cid(name), 20, &mut stalled)));
        }
        assert_eq!(sent.len(), 4, "budget must cap in-flight wants: {sent:?}");
        assert_eq!(s.outstanding(), 5);
        // A delivery frees capacity: the backlogged want dispatches.
        let follow = s.on_block(&peer(1), &cid("c1"), 30);
        assert_eq!(want_blocks(&follow).len(), 1);
        assert!(!s.has_want(&cid("c1")));
    }

    #[test]
    fn late_joiner_is_probed_for_live_wants() {
        let mut s = Session::new(vec![peer(1)], SessionConfig::default());
        let mut stalled = false;
        s.want_block(cid("a"), 0, &mut stalled);
        // Joiner is told about the in-flight want...
        let probe = s.add_peer(peer(2));
        assert_eq!(probe, vec![(peer(2), Message::WantHave(cid("a")))]);
        // ...answers HAVE (fallback; the want is already targeted), and
        // absorbs the want when the original target crashes.
        s.on_have(&peer(2), &cid("a"), 5);
        let (out, failed) = s.remove_peer(&peer(1), 10);
        assert!(failed.is_empty());
        assert_eq!(want_blocks(&out), vec![peer(2)]);
    }

    #[test]
    fn latency_samples_drain_once() {
        let mut s = Session::new(vec![peer(1)], SessionConfig::default());
        let mut stalled = false;
        s.want_block(cid("a"), 100, &mut stalled);
        s.on_block(&peer(1), &cid("a"), 350);
        let samples = s.take_latency_samples();
        assert_eq!(samples, vec![(peer(1), 250)]);
        assert!(s.take_latency_samples().is_empty());
    }
}
