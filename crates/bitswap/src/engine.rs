//! The sans-io Bitswap engine: serves inbound wants and runs client
//! sessions that fetch whole DAGs.
//!
//! A *session* fetches the DAG rooted at one CID from a set of candidate
//! peers. For every missing block it performs the three-step exchange of
//! §3.2 (WANT-HAVE → HAVE → WANT-BLOCK → BLOCK), discovering new wants as
//! branch nodes arrive and their links decode. Every received block is
//! verified against its CID before it is stored — the self-certification
//! property (§2.1) means no provider needs to be trusted.

use crate::ledger::Ledger;
use crate::message::Message;
use merkledag::{BlockStore, DagNode};
use multiformats::{Cid, Multicodec, PeerId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Handle for a client fetch session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionHandle(pub u64);

/// Actions the engine asks its driver to perform, and events it reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineOutput {
    /// Send `message` to `to`.
    Send {
        /// Destination peer.
        to: PeerId,
        /// The message.
        message: Message,
    },
    /// A session obtained and verified a block.
    BlockStored {
        /// The session.
        session: SessionHandle,
        /// The block's CID.
        cid: Cid,
    },
    /// A session has every block of its DAG.
    SessionComplete {
        /// The finished session.
        session: SessionHandle,
    },
    /// Every candidate peer denied having `cid`; the caller must find
    /// providers (DHT fallback, §3.2) and [`BitswapEngine::add_session_peer`].
    WantFailed {
        /// The session.
        session: SessionHandle,
        /// The unfindable block.
        cid: Cid,
    },
}

/// Progress of one wanted block.
#[derive(Debug, Clone)]
enum WantState {
    /// WANT-HAVE broadcast; waiting on answers from these peers.
    Probing { pending: HashSet<PeerId>, havers: Vec<PeerId> },
    /// WANT-BLOCK sent to this peer.
    Fetching { from: PeerId, fallback: Vec<PeerId> },
    /// All session peers answered DONT-HAVE.
    Stalled,
}

/// One client fetch session.
#[derive(Debug, Clone)]
struct Session {
    peers: Vec<PeerId>,
    /// Peers that have already delivered blocks in this session — new
    /// wants go straight to them with WANT-BLOCK (go-bitswap's session
    /// peer tracking).
    live: Vec<PeerId>,
    wants: HashMap<Cid, WantState>,
    /// Blocks received and verified in this session.
    received: u64,
    /// Duplicate/unsolicited blocks discarded.
    duplicates: u64,
    complete: bool,
}

/// Public snapshot of a session's progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionState {
    /// Wants still outstanding.
    pub outstanding: usize,
    /// Blocks received and verified.
    pub received: u64,
    /// Duplicates discarded.
    pub duplicates: u64,
    /// Whether the DAG is fully fetched.
    pub complete: bool,
}

/// Per-message-type counters kept by the engine, one direction each
/// (§3.2's WANT-HAVE / HAVE / DONT-HAVE / WANT-BLOCK / BLOCK exchange,
/// plus CANCEL).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageCounts {
    /// WANT-HAVE messages.
    pub want_have: u64,
    /// HAVE messages.
    pub have: u64,
    /// DONT-HAVE messages.
    pub dont_have: u64,
    /// WANT-BLOCK messages.
    pub want_block: u64,
    /// BLOCK messages.
    pub block: u64,
    /// CANCEL messages.
    pub cancel: u64,
}

impl MessageCounts {
    /// Bumps the counter matching `message`'s type.
    pub fn bump(&mut self, message: &Message) {
        match message {
            Message::WantHave(_) => self.want_have += 1,
            Message::Have(_) => self.have += 1,
            Message::DontHave(_) => self.dont_have += 1,
            Message::WantBlock(_) => self.want_block += 1,
            Message::Block { .. } => self.block += 1,
            Message::Cancel(_) => self.cancel += 1,
        }
    }

    /// `(label, count)` pairs for export into a metrics registry.
    pub fn as_pairs(&self) -> [(&'static str, u64); 6] {
        [
            ("WANT_HAVE", self.want_have),
            ("HAVE", self.have),
            ("DONT_HAVE", self.dont_have),
            ("WANT_BLOCK", self.want_block),
            ("BLOCK", self.block),
            ("CANCEL", self.cancel),
        ]
    }

    /// Total messages counted.
    pub fn total(&self) -> u64 {
        self.want_have + self.have + self.dont_have + self.want_block + self.block + self.cancel
    }
}

/// The per-node Bitswap engine (client sessions + server side + ledgers).
#[derive(Debug, Clone, Default)]
pub struct BitswapEngine {
    sessions: HashMap<SessionHandle, Session>,
    next_session: u64,
    /// Exchange ledgers (public for inspection by stats code).
    pub ledger: Ledger,
    /// Messages this engine has emitted, by type.
    pub counts_sent: MessageCounts,
    /// Messages this engine has consumed, by type.
    pub counts_received: MessageCounts,
}

impl BitswapEngine {
    /// Creates an engine.
    pub fn new() -> BitswapEngine {
        BitswapEngine::default()
    }

    /// Starts a session fetching the DAG rooted at `root` from `peers`.
    /// Blocks already present locally are walked without network traffic.
    pub fn start_session<S: BlockStore>(
        &mut self,
        root: Cid,
        peers: Vec<PeerId>,
        store: &mut S,
    ) -> (SessionHandle, Vec<EngineOutput>) {
        let handle = SessionHandle(self.next_session);
        self.next_session += 1;
        self.sessions.insert(
            handle,
            Session {
                peers,
                live: Vec::new(),
                wants: HashMap::new(),
                received: 0,
                duplicates: 0,
                complete: false,
            },
        );
        let mut out = Vec::new();
        self.want(handle, root, store, &mut out);
        self.check_complete(handle, &mut out);
        (handle, out)
    }

    /// Adds a peer (e.g. a provider discovered via the DHT) to a session
    /// and re-probes any stalled wants through it.
    pub fn add_session_peer<S: BlockStore>(
        &mut self,
        handle: SessionHandle,
        peer: PeerId,
        _store: &mut S,
    ) -> Vec<EngineOutput> {
        let mut out = Vec::new();
        let Some(session) = self.sessions.get_mut(&handle) else {
            return out;
        };
        if !session.peers.contains(&peer) {
            session.peers.push(peer.clone());
        }
        for (cid, state) in session.wants.iter_mut() {
            match state {
                WantState::Stalled => {
                    *state = WantState::Probing {
                        pending: HashSet::from([peer.clone()]),
                        havers: Vec::new(),
                    };
                    self.counts_sent.bump(&Message::WantHave(cid.clone()));
                    out.push(EngineOutput::Send {
                        to: peer.clone(),
                        message: Message::WantHave(cid.clone()),
                    });
                }
                WantState::Probing { pending, .. } => {
                    pending.insert(peer.clone());
                    self.counts_sent.bump(&Message::WantHave(cid.clone()));
                    out.push(EngineOutput::Send {
                        to: peer.clone(),
                        message: Message::WantHave(cid.clone()),
                    });
                }
                WantState::Fetching { .. } => {}
            }
        }
        out
    }

    /// Progress snapshot for a session.
    pub fn session_state(&self, handle: SessionHandle) -> Option<SessionState> {
        self.sessions.get(&handle).map(|s| SessionState {
            outstanding: s.wants.len(),
            received: s.received,
            duplicates: s.duplicates,
            complete: s.complete,
        })
    }

    /// Drops a session (e.g. the opportunistic phase timed out, §3.2) and
    /// returns CANCEL messages for everything in flight.
    pub fn cancel_session(&mut self, handle: SessionHandle) -> Vec<EngineOutput> {
        let mut out = Vec::new();
        if let Some(session) = self.sessions.remove(&handle) {
            for (cid, state) in session.wants {
                match state {
                    WantState::Probing { pending, .. } => {
                        for p in pending {
                            self.counts_sent.bump(&Message::Cancel(cid.clone()));
                            out.push(EngineOutput::Send {
                                to: p,
                                message: Message::Cancel(cid.clone()),
                            });
                        }
                    }
                    WantState::Fetching { from, .. } => {
                        self.counts_sent.bump(&Message::Cancel(cid.clone()));
                        out.push(EngineOutput::Send { to: from, message: Message::Cancel(cid) });
                    }
                    WantState::Stalled => {}
                }
            }
        }
        out
    }

    /// Handles any inbound message — server wants and client responses —
    /// against the local blockstore.
    pub fn handle_inbound<S: BlockStore>(
        &mut self,
        from: &PeerId,
        message: Message,
        store: &mut S,
    ) -> Vec<EngineOutput> {
        self.ledger.record_received(
            from,
            message.wire_size(),
            matches!(message, Message::Block { .. }),
        );
        self.counts_received.bump(&message);
        match message {
            // ---- server side ----
            Message::WantHave(cid) => {
                let reply =
                    if store.has(&cid) { Message::Have(cid) } else { Message::DontHave(cid) };
                self.send(from.clone(), reply)
            }
            Message::WantBlock(cid) => match store.get(&cid) {
                Some(data) => self.send(from.clone(), Message::Block { cid, data }),
                None => self.send(from.clone(), Message::DontHave(cid)),
            },
            Message::Cancel(_) => Vec::new(),

            // ---- client side ----
            Message::Have(cid) => self.on_have(from, &cid),
            Message::DontHave(cid) => self.on_dont_have(from, &cid),
            Message::Block { cid, data } => self.on_block(from, cid, data, store),
        }
    }

    fn send(&mut self, to: PeerId, message: Message) -> Vec<EngineOutput> {
        self.ledger.record_sent(&to, message.wire_size(), matches!(message, Message::Block { .. }));
        self.counts_sent.bump(&message);
        vec![EngineOutput::Send { to, message }]
    }

    /// Registers a want for `cid` in `handle`'s session, walking local
    /// blocks (and their children) without network traffic.
    fn want<S: BlockStore>(
        &mut self,
        handle: SessionHandle,
        root: Cid,
        store: &mut S,
        out: &mut Vec<EngineOutput>,
    ) {
        let mut queue = VecDeque::from([root]);
        let mut sends = Vec::new();
        {
            let Some(session) = self.sessions.get_mut(&handle) else {
                return;
            };
            while let Some(cid) = queue.pop_front() {
                if session.wants.contains_key(&cid) {
                    continue;
                }
                if let Some(bytes) = store.get(&cid) {
                    // Already local (cached or previously fetched): only its
                    // missing descendants need wants.
                    if cid.codec() == Multicodec::DagPb {
                        if let Ok(node) = DagNode::decode(&bytes) {
                            queue.extend(node.links.into_iter().map(|l| l.cid));
                        }
                    }
                    continue;
                }
                if session.peers.is_empty() {
                    session.wants.insert(cid, WantState::Stalled);
                    continue;
                }
                if session.peers.len() == 1 || !session.live.is_empty() {
                    // A single known provider, or a peer that has already
                    // delivered blocks in this session: skip the WANT-HAVE
                    // round trip and request directly, as go-bitswap does.
                    let (p, fallback) = if session.live.is_empty() {
                        (session.peers[0].clone(), Vec::new())
                    } else {
                        (session.live[0].clone(), session.live[1..].to_vec())
                    };
                    sends.push((p.clone(), Message::WantBlock(cid.clone())));
                    session.wants.insert(cid, WantState::Fetching { from: p, fallback });
                    continue;
                }
                let pending: HashSet<PeerId> = session.peers.iter().cloned().collect();
                for p in &session.peers {
                    sends.push((p.clone(), Message::WantHave(cid.clone())));
                }
                session.wants.insert(cid, WantState::Probing { pending, havers: Vec::new() });
            }
        }
        for (to, msg) in sends {
            out.extend(self.send(to, msg));
        }
        // Stalled wants with no peers at all must surface immediately.
        let stalled: Vec<Cid> = self.sessions[&handle]
            .wants
            .iter()
            .filter(|(_, s)| matches!(s, WantState::Stalled))
            .map(|(c, _)| c.clone())
            .collect();
        for cid in stalled {
            out.push(EngineOutput::WantFailed { session: handle, cid });
        }
    }

    fn on_have(&mut self, from: &PeerId, cid: &Cid) -> Vec<EngineOutput> {
        let mut out = Vec::new();
        let mut request: Option<PeerId> = None;
        for session in self.sessions.values_mut() {
            let Some(state) = session.wants.get_mut(cid) else {
                continue;
            };
            match state {
                WantState::Probing { .. } => {
                    // First HAVE wins: request the block right away (§3.2's
                    // three-step exchange).
                    *state = WantState::Fetching { from: from.clone(), fallback: Vec::new() };
                    request = Some(from.clone());
                }
                WantState::Fetching { from: fetching, fallback } => {
                    // A later HAVE becomes a fail-over candidate.
                    if fetching != from && !fallback.contains(from) {
                        fallback.push(from.clone());
                    }
                }
                WantState::Stalled => {
                    *state = WantState::Fetching { from: from.clone(), fallback: Vec::new() };
                    request = Some(from.clone());
                }
            }
            break;
        }
        if let Some(to) = request {
            out.extend(self.send(to, Message::WantBlock(cid.clone())));
        }
        out
    }

    fn on_dont_have(&mut self, from: &PeerId, cid: &Cid) -> Vec<EngineOutput> {
        let mut out = Vec::new();
        let mut failures: Vec<(SessionHandle, Cid)> = Vec::new();
        let mut refetch: Option<(PeerId, Cid)> = None;
        for (handle, session) in self.sessions.iter_mut() {
            let Some(state) = session.wants.get_mut(cid) else {
                continue;
            };
            match state {
                WantState::Probing { pending, havers } => {
                    pending.remove(from);
                    if pending.is_empty() && havers.is_empty() {
                        *state = WantState::Stalled;
                        failures.push((*handle, cid.clone()));
                    }
                }
                WantState::Fetching { from: fetching_from, fallback } => {
                    // The chosen peer reneged (e.g. GC'd the block between
                    // HAVE and WANT-BLOCK): fail over to the next haver.
                    if fetching_from == from {
                        if let Some(next) = fallback.first().cloned() {
                            let rest = fallback[1..].to_vec();
                            *state = WantState::Fetching { from: next.clone(), fallback: rest };
                            refetch = Some((next, cid.clone()));
                        } else {
                            *state = WantState::Stalled;
                            failures.push((*handle, cid.clone()));
                        }
                    }
                }
                WantState::Stalled => {}
            }
            break;
        }
        if let Some((to, c)) = refetch {
            out.extend(self.send(to, Message::WantBlock(c)));
        }
        for (session, c) in failures {
            out.push(EngineOutput::WantFailed { session, cid: c });
        }
        out
    }

    fn on_block<S: BlockStore>(
        &mut self,
        _from: &PeerId,
        cid: Cid,
        data: bytes::Bytes,
        store: &mut S,
    ) -> Vec<EngineOutput> {
        let mut out = Vec::new();
        // Verify before anything else: "verify that the data they were
        // served matches the requested CID" (§3.1).
        if !cid.hash().verify(&data) {
            // Corrupt block: ignore it entirely (sessions keep waiting and
            // will fail over / stall rather than accept bad data).
            return out;
        }
        let mut owner: Option<SessionHandle> = None;
        for (handle, session) in self.sessions.iter_mut() {
            if session.wants.remove(&cid).is_some() {
                session.received += 1;
                if !session.live.contains(_from) {
                    session.live.insert(0, _from.clone());
                }
                owner = Some(*handle);
                break;
            }
        }
        let Some(handle) = owner else {
            // Unsolicited or duplicate block.
            if let Some(s) = self.sessions.values_mut().next() {
                s.duplicates += 1;
            }
            return out;
        };
        store.put(cid.clone(), data.clone());
        out.push(EngineOutput::BlockStored { session: handle, cid: cid.clone() });
        // Discover child wants from branch nodes.
        if cid.codec() == Multicodec::DagPb {
            if let Ok(node) = DagNode::decode(&data) {
                for link in node.links {
                    self.want(handle, link.cid, store, &mut out);
                }
            }
        }
        self.check_complete(handle, &mut out);
        out
    }

    fn check_complete(&mut self, handle: SessionHandle, out: &mut Vec<EngineOutput>) {
        if let Some(session) = self.sessions.get_mut(&handle) {
            if session.wants.is_empty() && !session.complete {
                session.complete = true;
                out.push(EngineOutput::SessionComplete { session: handle });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use merkledag::{DagBuilder, DagLayout, FixedSizeChunker, MemoryBlockStore};
    use multiformats::Keypair;

    fn peer(seed: u64) -> PeerId {
        Keypair::from_seed(seed).peer_id()
    }

    /// Drives a client engine against server engines until quiescent.
    fn run_exchange(
        client: &mut BitswapEngine,
        client_store: &mut MemoryBlockStore,
        servers: &mut [(PeerId, BitswapEngine, MemoryBlockStore)],
        initial: Vec<EngineOutput>,
        client_id: &PeerId,
    ) -> (bool, Vec<Cid>) {
        let mut queue: VecDeque<(PeerId, PeerId, Message)> = VecDeque::new(); // (from, to, msg)
        let mut complete = false;
        let mut stored = Vec::new();
        let absorb = |outs: Vec<EngineOutput>,
                      sender: &PeerId,
                      queue: &mut VecDeque<(PeerId, PeerId, Message)>,
                      complete: &mut bool,
                      stored: &mut dyn FnMut(Cid)| {
            for o in outs {
                match o {
                    EngineOutput::Send { to, message } => {
                        queue.push_back((sender.clone(), to, message))
                    }
                    EngineOutput::SessionComplete { .. } => *complete = true,
                    EngineOutput::BlockStored { cid, .. } => stored(cid),
                    EngineOutput::WantFailed { .. } => {}
                }
            }
        };
        absorb(initial, client_id, &mut queue, &mut complete, &mut |c| stored.push(c));
        let mut guard = 0;
        while let Some((from, to, msg)) = queue.pop_front() {
            guard += 1;
            assert!(guard < 100_000, "exchange did not quiesce");
            if to == *client_id {
                let outs = client.handle_inbound(&from, msg, client_store);
                absorb(outs, client_id, &mut queue, &mut complete, &mut |c| stored.push(c));
            } else if let Some((sid, engine, store)) =
                servers.iter_mut().find(|(id, _, _)| *id == to)
            {
                let outs = engine.handle_inbound(&from, msg, store);
                let sid = sid.clone();
                absorb(outs, &sid, &mut queue, &mut complete, &mut |c| stored.push(c));
            }
        }
        (complete, stored)
    }

    fn seeded_server(seed: u64, data: &Bytes) -> ((PeerId, BitswapEngine, MemoryBlockStore), Cid) {
        let mut store = MemoryBlockStore::new();
        let root = DagBuilder::new(&mut store)
            .with_layout(DagLayout { fanout: 4 })
            .add_with_chunker(data, &FixedSizeChunker::new(256))
            .unwrap()
            .root;
        ((peer(seed), BitswapEngine::new(), store), root)
    }

    #[test]
    fn fetch_multi_block_dag() {
        let data = Bytes::from((0..2000u32).map(|i| (i % 255) as u8).collect::<Vec<_>>());
        let (server, root) = seeded_server(10, &data);
        let mut servers = vec![server];
        let mut client = BitswapEngine::new();
        let mut client_store = MemoryBlockStore::new();
        let me = peer(1);
        let (handle, init) = client.start_session(root.clone(), vec![peer(10)], &mut client_store);
        let (complete, stored) =
            run_exchange(&mut client, &mut client_store, &mut servers, init, &me);
        assert!(complete, "session must complete");
        assert!(stored.contains(&root));
        // The file reassembles from the client's store.
        let out = merkledag::Resolver::new(&mut client_store).read_file(&root).unwrap();
        assert_eq!(out, data);
        let st = client.session_state(handle).unwrap();
        assert!(st.complete);
        assert_eq!(st.outstanding, 0);
        assert!(st.received >= 8, "expected 8 leaves + branches, got {}", st.received);
    }

    #[test]
    fn local_blocks_short_circuit() {
        let data = Bytes::from(vec![5u8; 1000]);
        let mut store = MemoryBlockStore::new();
        let root = DagBuilder::new(&mut store).add(&data).unwrap().root;
        let mut client = BitswapEngine::new();
        // Root already local: session completes with zero messages.
        let (_, outs) = client.start_session(root, vec![peer(10)], &mut store);
        assert_eq!(outs.len(), 1);
        assert!(matches!(outs[0], EngineOutput::SessionComplete { .. }));
    }

    #[test]
    fn want_failed_when_all_deny() {
        let mut client = BitswapEngine::new();
        let mut store = MemoryBlockStore::new();
        let missing = Cid::from_raw_data(b"nobody has this");
        let me = peer(1);
        let (handle, init) =
            client.start_session(missing.clone(), vec![peer(10), peer(11)], &mut store);
        // Two empty servers.
        let mut servers = [
            (peer(10), BitswapEngine::new(), MemoryBlockStore::new()),
            (peer(11), BitswapEngine::new(), MemoryBlockStore::new()),
        ];
        let mut queue: VecDeque<(PeerId, PeerId, Message)> = VecDeque::new();
        for o in init {
            if let EngineOutput::Send { to, message } = o {
                queue.push_back((me.clone(), to, message));
            }
        }
        let mut failed = None;
        while let Some((from, to, msg)) = queue.pop_front() {
            if to == me {
                for o in client.handle_inbound(&from, msg, &mut store) {
                    match o {
                        EngineOutput::Send { to, message } => {
                            queue.push_back((me.clone(), to, message))
                        }
                        EngineOutput::WantFailed { session, cid } => failed = Some((session, cid)),
                        _ => {}
                    }
                }
            } else if let Some((sid, engine, sstore)) =
                servers.iter_mut().find(|(id, _, _)| *id == to)
            {
                let sid = sid.clone();
                for o in engine.handle_inbound(&from, msg, sstore) {
                    if let EngineOutput::Send { to, message } = o {
                        queue.push_back((sid.clone(), to, message));
                    }
                }
            }
        }
        assert_eq!(failed, Some((handle, missing)));
    }

    #[test]
    fn dht_fallback_via_add_session_peer() {
        // Session stalls with an empty peer set, then a provider found via
        // the "DHT" is added and the fetch completes.
        let data = Bytes::from(vec![9u8; 600]);
        let (server, root) = seeded_server(20, &data);
        let mut servers = vec![server];
        let mut client = BitswapEngine::new();
        let mut store = MemoryBlockStore::new();
        let me = peer(1);
        let (handle, init) = client.start_session(root.clone(), vec![], &mut store);
        assert!(init.iter().any(|o| matches!(o, EngineOutput::WantFailed { .. })));
        let follow = client.add_session_peer(handle, peer(20), &mut store);
        let (complete, _) = run_exchange(&mut client, &mut store, &mut servers, follow, &me);
        assert!(complete);
        assert_eq!(merkledag::Resolver::new(&mut store).read_file(&root).unwrap(), data);
    }

    #[test]
    fn corrupt_block_rejected() {
        let mut client = BitswapEngine::new();
        let mut store = MemoryBlockStore::new();
        let cid = Cid::from_raw_data(b"the real content");
        let (handle, _) = client.start_session(cid.clone(), vec![peer(10)], &mut store);
        let outs = client.handle_inbound(
            &peer(10),
            Message::Block { cid: cid.clone(), data: Bytes::from_static(b"FORGED") },
            &mut store,
        );
        assert!(outs.is_empty(), "forged block produces no progress");
        assert!(!store.has(&cid));
        let st = client.session_state(handle).unwrap();
        assert_eq!(st.received, 0);
        assert_eq!(st.outstanding, 1, "want stays outstanding");
    }

    #[test]
    fn server_side_answers() {
        let mut server = BitswapEngine::new();
        let mut store = MemoryBlockStore::new();
        let data = Bytes::from_static(b"block!");
        let cid = Cid::from_raw_data(&data);
        store.put(cid.clone(), data.clone());
        let asker = peer(2);

        let outs = server.handle_inbound(&asker, Message::WantHave(cid.clone()), &mut store);
        assert_eq!(
            outs,
            vec![EngineOutput::Send { to: asker.clone(), message: Message::Have(cid.clone()) }]
        );
        let outs = server.handle_inbound(&asker, Message::WantBlock(cid.clone()), &mut store);
        assert_eq!(
            outs,
            vec![EngineOutput::Send {
                to: asker.clone(),
                message: Message::Block { cid: cid.clone(), data }
            }]
        );
        let missing = Cid::from_raw_data(b"no");
        let outs = server.handle_inbound(&asker, Message::WantHave(missing.clone()), &mut store);
        assert_eq!(
            outs,
            vec![EngineOutput::Send { to: asker, message: Message::DontHave(missing) }]
        );
    }

    #[test]
    fn cancel_session_emits_cancels() {
        let mut client = BitswapEngine::new();
        let mut store = MemoryBlockStore::new();
        let cid = Cid::from_raw_data(b"will cancel");
        let (handle, _) = client.start_session(cid.clone(), vec![peer(10), peer(11)], &mut store);
        let outs = client.cancel_session(handle);
        let cancels = outs
            .iter()
            .filter(|o| matches!(o, EngineOutput::Send { message: Message::Cancel(_), .. }))
            .count();
        assert_eq!(cancels, 2);
        assert!(client.session_state(handle).is_none());
    }

    #[test]
    fn failover_to_second_haver() {
        // Peer A says HAVE then reneges with DONT_HAVE on WANT-BLOCK; the
        // engine must fail over to peer B who also said HAVE.
        let data = Bytes::from_static(b"precious");
        let cid = Cid::from_raw_data(&data);
        let mut client = BitswapEngine::new();
        let mut store = MemoryBlockStore::new();
        let (_, init) = client.start_session(cid.clone(), vec![peer(10), peer(11)], &mut store);
        assert_eq!(init.len(), 2); // two WANT-HAVEs
                                   // Both reply HAVE; the first (peer 10) gets the WANT-BLOCK.
        let o1 = client.handle_inbound(&peer(10), Message::Have(cid.clone()), &mut store);
        assert_eq!(
            o1,
            vec![EngineOutput::Send { to: peer(10), message: Message::WantBlock(cid.clone()) }]
        );
        let o2 = client.handle_inbound(&peer(11), Message::Have(cid.clone()), &mut store);
        assert!(o2.is_empty(), "second HAVE is a fallback, no extra request");
        // Peer 10 reneges.
        let o3 = client.handle_inbound(&peer(10), Message::DontHave(cid.clone()), &mut store);
        assert_eq!(
            o3,
            vec![EngineOutput::Send { to: peer(11), message: Message::WantBlock(cid.clone()) }]
        );
        // Peer 11 delivers.
        let o4 =
            client.handle_inbound(&peer(11), Message::Block { cid: cid.clone(), data }, &mut store);
        assert!(o4.iter().any(|o| matches!(o, EngineOutput::SessionComplete { .. })));
        assert!(store.has(&cid));
    }

    #[test]
    fn ledger_tracks_traffic() {
        let mut server = BitswapEngine::new();
        let mut store = MemoryBlockStore::new();
        let data = Bytes::from(vec![1u8; 500]);
        let cid = Cid::from_raw_data(&data);
        store.put(cid.clone(), data);
        let asker = peer(3);
        server.handle_inbound(&asker, Message::WantBlock(cid), &mut store);
        let entry = server.ledger.entry(&asker);
        assert_eq!(entry.received, 40); // the WANT_BLOCK
        assert_eq!(entry.sent, 540); // the BLOCK
        assert_eq!(entry.blocks, 1);
    }
}
