//! The sans-io Bitswap engine: serves inbound wants and runs client
//! sessions that fetch whole DAGs.
//!
//! A *session* ([`crate::session::Session`]) fetches the DAG rooted at one
//! CID from a set of candidate peers. For every missing block it performs
//! the three-step exchange of §3.2 (WANT-HAVE → HAVE → WANT-BLOCK →
//! BLOCK), discovering new wants as branch nodes arrive and their links
//! decode, splitting live wants across the best-scoring peers, and
//! re-queueing wants when a peer reneges or crashes. Every received block
//! is verified against its CID before it is stored — the
//! self-certification property (§2.1) means no provider needs to be
//! trusted.
//!
//! The engine is the session's stateful shell: it owns the sessions,
//! stamps every outbound message into the ledgers and per-type counters,
//! answers the server side of the protocol, and routes inbound client
//! messages to the owning session. A driver feeds it a clock
//! ([`BitswapEngine::set_clock`]) so sessions can score per-peer response
//! latency; without one, all samples read zero and peer selection falls
//! back to join-shortest-queue order.

use crate::ledger::Ledger;
use crate::message::Message;
use crate::session::{Session, SessionConfig, SessionStats};
use merkledag::{BlockStore, DagNode};
use multiformats::{Cid, Multicodec, PeerId};
use std::collections::{HashMap, VecDeque};

/// Handle for a client fetch session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionHandle(pub u64);

/// Actions the engine asks its driver to perform, and events it reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineOutput {
    /// Send `message` to `to`.
    Send {
        /// Destination peer.
        to: PeerId,
        /// The message.
        message: Message,
    },
    /// A session obtained and verified a block.
    BlockStored {
        /// The session.
        session: SessionHandle,
        /// The block's CID.
        cid: Cid,
    },
    /// A session received a block it had already fetched (e.g. the slower
    /// target of a duplicate-factor race, or a re-routed want whose
    /// original target delivered after all).
    DuplicateBlock {
        /// The session the duplicate is attributed to.
        session: SessionHandle,
    },
    /// A session has every block of its DAG.
    SessionComplete {
        /// The finished session.
        session: SessionHandle,
    },
    /// Every candidate peer denied having `cid`; the caller must find
    /// providers (DHT fallback, §3.2) and [`BitswapEngine::add_session_peer`].
    WantFailed {
        /// The session.
        session: SessionHandle,
        /// The unfindable block.
        cid: Cid,
    },
}

/// Public snapshot of a session's progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionState {
    /// Wants still outstanding.
    pub outstanding: usize,
    /// Blocks received and verified.
    pub received: u64,
    /// Duplicates discarded.
    pub duplicates: u64,
    /// Whether the DAG is fully fetched.
    pub complete: bool,
    /// WANT-BLOCK requests sent.
    pub wants_sent: u64,
    /// Wants re-queued to another peer after a renege or crash.
    pub reroutes: u64,
    /// Candidate peers the session knows (including crashed ones).
    pub peers: usize,
}

/// Per-message-type counters kept by the engine, one direction each
/// (§3.2's WANT-HAVE / HAVE / DONT-HAVE / WANT-BLOCK / BLOCK exchange,
/// plus CANCEL).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageCounts {
    /// WANT-HAVE messages.
    pub want_have: u64,
    /// HAVE messages.
    pub have: u64,
    /// DONT-HAVE messages.
    pub dont_have: u64,
    /// WANT-BLOCK messages.
    pub want_block: u64,
    /// BLOCK messages.
    pub block: u64,
    /// CANCEL messages.
    pub cancel: u64,
}

impl MessageCounts {
    /// Bumps the counter matching `message`'s type.
    pub fn bump(&mut self, message: &Message) {
        match message {
            Message::WantHave(_) => self.want_have += 1,
            Message::Have(_) => self.have += 1,
            Message::DontHave(_) => self.dont_have += 1,
            Message::WantBlock(_) => self.want_block += 1,
            Message::Block { .. } => self.block += 1,
            Message::Cancel(_) => self.cancel += 1,
        }
    }

    /// `(label, count)` pairs for export into a metrics registry.
    pub fn as_pairs(&self) -> [(&'static str, u64); 6] {
        [
            ("WANT_HAVE", self.want_have),
            ("HAVE", self.have),
            ("DONT_HAVE", self.dont_have),
            ("WANT_BLOCK", self.want_block),
            ("BLOCK", self.block),
            ("CANCEL", self.cancel),
        ]
    }

    /// Total messages counted.
    pub fn total(&self) -> u64 {
        self.want_have + self.have + self.dont_have + self.want_block + self.block + self.cancel
    }
}

/// The per-node Bitswap engine (client sessions + server side + ledgers).
#[derive(Debug, Clone, Default)]
pub struct BitswapEngine {
    sessions: HashMap<SessionHandle, Session>,
    next_session: u64,
    /// Driver-supplied clock in nanoseconds, for per-peer latency scoring.
    clock_nanos: u64,
    /// Exchange ledgers (public for inspection by stats code).
    pub ledger: Ledger,
    /// Messages this engine has emitted, by type.
    pub counts_sent: MessageCounts,
    /// Messages this engine has consumed, by type.
    pub counts_received: MessageCounts,
}

impl BitswapEngine {
    /// Creates an engine.
    pub fn new() -> BitswapEngine {
        BitswapEngine::default()
    }

    /// Advances the engine's clock (nanoseconds of the driver's choice of
    /// epoch). Sessions stamp WANT-BLOCKs with it and score each peer's
    /// response latency on delivery.
    pub fn set_clock(&mut self, now_nanos: u64) {
        self.clock_nanos = now_nanos;
    }

    /// Starts a session fetching the DAG rooted at `root` from `peers`
    /// with the default [`SessionConfig`]. Blocks already present locally
    /// are walked without network traffic.
    pub fn start_session<S: BlockStore>(
        &mut self,
        root: Cid,
        peers: Vec<PeerId>,
        store: &mut S,
    ) -> (SessionHandle, Vec<EngineOutput>) {
        self.start_session_with(root, peers, SessionConfig::default(), store)
    }

    /// [`BitswapEngine::start_session`] with explicit session tuning
    /// (duplicate factor, broadcast limit, score decay).
    pub fn start_session_with<S: BlockStore>(
        &mut self,
        root: Cid,
        peers: Vec<PeerId>,
        cfg: SessionConfig,
        store: &mut S,
    ) -> (SessionHandle, Vec<EngineOutput>) {
        let handle = SessionHandle(self.next_session);
        self.next_session += 1;
        self.sessions.insert(handle, Session::new(peers, cfg));
        let mut out = Vec::new();
        self.want(handle, root, store, &mut out);
        self.check_complete(handle, &mut out);
        (handle, out)
    }

    /// Adds a peer (e.g. a provider discovered via the DHT, or a probe
    /// candidate carried over) to a session and re-probes any stalled
    /// wants through it.
    pub fn add_session_peer<S: BlockStore>(
        &mut self,
        handle: SessionHandle,
        peer: PeerId,
        _store: &mut S,
    ) -> Vec<EngineOutput> {
        let mut out = Vec::new();
        let Some(session) = self.sessions.get_mut(&handle) else {
            return out;
        };
        for (to, msg) in session.add_peer(peer) {
            out.extend(self.send(to, msg));
        }
        out
    }

    /// Progress snapshot for a session.
    pub fn session_state(&self, handle: SessionHandle) -> Option<SessionState> {
        self.sessions.get(&handle).map(|s| {
            let stats = s.stats();
            SessionState {
                outstanding: s.outstanding(),
                received: stats.blocks_received,
                duplicates: stats.duplicate_blocks,
                complete: s.is_complete(),
                wants_sent: stats.wants_sent,
                reroutes: stats.reroutes,
                peers: s.peer_count(),
            }
        })
    }

    /// Exportable counters for a session.
    pub fn session_stats(&self, handle: SessionHandle) -> Option<SessionStats> {
        self.sessions.get(&handle).map(|s| s.stats())
    }

    /// Peers of `handle` that answered HAVE or delivered blocks — worth
    /// carrying into a follow-up session instead of discarding with the
    /// probe (§3.2's opportunistic phase feeding the DHT phase).
    pub fn responsive_session_peers(&self, handle: SessionHandle) -> Vec<PeerId> {
        self.sessions.get(&handle).map(|s| s.responsive_peers()).unwrap_or_default()
    }

    /// Drains a session's `(peer, latency_nanos)` response samples.
    pub fn take_latency_samples(&mut self, handle: SessionHandle) -> Vec<(PeerId, u64)> {
        self.sessions.get_mut(&handle).map(|s| s.take_latency_samples()).unwrap_or_default()
    }

    /// Drops a session (e.g. the opportunistic phase timed out, §3.2) and
    /// returns CANCEL messages for everything in flight.
    pub fn cancel_session(&mut self, handle: SessionHandle) -> Vec<EngineOutput> {
        let mut out = Vec::new();
        if let Some(session) = self.sessions.remove(&handle) {
            for (to, msg) in session.cancel() {
                out.extend(self.send(to, msg));
            }
        }
        out
    }

    /// A connection dropped (crash, churn, eviction): every session
    /// re-queues the wants it had in flight at `peer` on its surviving
    /// candidates. Wants that cannot be re-routed surface as
    /// [`EngineOutput::WantFailed`].
    pub fn peer_disconnected(&mut self, peer: &PeerId) -> Vec<EngineOutput> {
        self.peer_disconnected_by_session(peer).into_iter().flat_map(|(_, outs)| outs).collect()
    }

    /// [`BitswapEngine::peer_disconnected`], keeping each session's
    /// outputs attributed to its handle (in creation order, so callers
    /// that map sessions back to operations — e.g. for per-op re-route
    /// tracing — stay deterministic). Flattening the groups reproduces
    /// `peer_disconnected` exactly.
    pub fn peer_disconnected_by_session(
        &mut self,
        peer: &PeerId,
    ) -> Vec<(SessionHandle, Vec<EngineOutput>)> {
        let mut grouped = Vec::new();
        for handle in self.session_handles() {
            let now = self.clock_nanos;
            let Some(session) = self.sessions.get_mut(&handle) else {
                continue;
            };
            let (msgs, failed) = session.remove_peer(peer, now);
            let mut out = Vec::new();
            for (to, msg) in msgs {
                out.extend(self.send(to, msg));
            }
            for cid in failed {
                out.push(EngineOutput::WantFailed { session: handle, cid });
            }
            if !out.is_empty() {
                grouped.push((handle, out));
            }
        }
        grouped
    }

    /// Handles any inbound message — server wants and client responses —
    /// against the local blockstore.
    pub fn handle_inbound<S: BlockStore>(
        &mut self,
        from: &PeerId,
        message: Message,
        store: &mut S,
    ) -> Vec<EngineOutput> {
        self.ledger.record_received(
            from,
            message.wire_size(),
            matches!(message, Message::Block { .. }),
        );
        self.counts_received.bump(&message);
        match message {
            // ---- server side ----
            Message::WantHave(cid) => {
                let reply =
                    if store.has(&cid) { Message::Have(cid) } else { Message::DontHave(cid) };
                self.send(from.clone(), reply)
            }
            Message::WantBlock(cid) => match store.get(&cid) {
                Some(data) => self.send(from.clone(), Message::Block { cid, data }),
                None => self.send(from.clone(), Message::DontHave(cid)),
            },
            Message::Cancel(_) => Vec::new(),

            // ---- client side ----
            Message::Have(cid) => self.on_have(from, &cid),
            Message::DontHave(cid) => self.on_dont_have(from, &cid),
            Message::Block { cid, data } => self.on_block(from, cid, data, store),
        }
    }

    fn send(&mut self, to: PeerId, message: Message) -> Vec<EngineOutput> {
        self.ledger.record_sent(&to, message.wire_size(), matches!(message, Message::Block { .. }));
        self.counts_sent.bump(&message);
        vec![EngineOutput::Send { to, message }]
    }

    /// Session handles in creation order — the deterministic scan order
    /// for inbound client messages (a `HashMap` walk would leak hash-seed
    /// order into the message sequence and break replay determinism).
    fn session_handles(&self) -> Vec<SessionHandle> {
        let mut handles: Vec<SessionHandle> = self.sessions.keys().copied().collect();
        handles.sort_unstable();
        handles
    }

    /// Registers a want for `cid` in `handle`'s session, walking local
    /// blocks (and their children) without network traffic.
    fn want<S: BlockStore>(
        &mut self,
        handle: SessionHandle,
        root: Cid,
        store: &mut S,
        out: &mut Vec<EngineOutput>,
    ) {
        let now = self.clock_nanos;
        let mut queue = VecDeque::from([root]);
        let mut sends = Vec::new();
        let mut failures = Vec::new();
        {
            let Some(session) = self.sessions.get_mut(&handle) else {
                return;
            };
            while let Some(cid) = queue.pop_front() {
                if session.has_want(&cid) {
                    continue;
                }
                if let Some(bytes) = store.get(&cid) {
                    // Already local (cached or previously fetched): only its
                    // missing descendants need wants.
                    if cid.codec() == Multicodec::DagPb {
                        if let Ok(node) = DagNode::decode(&bytes) {
                            queue.extend(node.links.into_iter().map(|l| l.cid));
                        }
                    }
                    continue;
                }
                let mut stalled = false;
                sends.extend(session.want_block(cid.clone(), now, &mut stalled));
                if stalled {
                    failures.push(cid);
                }
            }
        }
        for (to, msg) in sends {
            out.extend(self.send(to, msg));
        }
        // Stalled wants with no peers at all must surface immediately.
        for cid in failures {
            out.push(EngineOutput::WantFailed { session: handle, cid });
        }
    }

    fn on_have(&mut self, from: &PeerId, cid: &Cid) -> Vec<EngineOutput> {
        let mut out = Vec::new();
        let handles = self.session_handles();
        let owner = handles
            .iter()
            .copied()
            .find(|h| self.sessions.get(h).is_some_and(|s| s.has_want(cid)))
            // A HAVE landing after its want resolved still proves the
            // sender holds this DAG: route it to the session that fetched
            // the CID, so the peer becomes ready and backlogged wants can
            // engage it (otherwise slow HAVE responders are locked out of
            // the whole transfer).
            .or_else(|| {
                handles
                    .iter()
                    .copied()
                    .find(|h| self.sessions.get(h).is_some_and(|s| s.was_delivered(cid)))
            });
        if let Some(handle) = owner {
            let now = self.clock_nanos;
            if let Some(session) = self.sessions.get_mut(&handle) {
                for (to, msg) in session.on_have(from, cid, now) {
                    out.extend(self.send(to, msg));
                }
            }
        }
        out
    }

    fn on_dont_have(&mut self, from: &PeerId, cid: &Cid) -> Vec<EngineOutput> {
        let mut out = Vec::new();
        for handle in self.session_handles() {
            let now = self.clock_nanos;
            let Some(session) = self.sessions.get_mut(&handle) else {
                continue;
            };
            if !session.has_want(cid) {
                continue;
            }
            let (msgs, stalled) = session.on_dont_have(from, cid, now);
            for (to, msg) in msgs {
                out.extend(self.send(to, msg));
            }
            if stalled {
                out.push(EngineOutput::WantFailed { session: handle, cid: cid.clone() });
            }
            break;
        }
        out
    }

    fn on_block<S: BlockStore>(
        &mut self,
        from: &PeerId,
        cid: Cid,
        data: bytes::Bytes,
        store: &mut S,
    ) -> Vec<EngineOutput> {
        let mut out = Vec::new();
        // Verify before anything else: "verify that the data they were
        // served matches the requested CID" (§3.1).
        if !cid.hash().verify(&data) {
            // Corrupt block: ignore it entirely (sessions keep waiting and
            // will fail over / stall rather than accept bad data).
            return out;
        }
        let handles = self.session_handles();
        let owner = handles
            .iter()
            .copied()
            .find(|h| self.sessions.get(h).is_some_and(|s| s.has_want(&cid)));
        let Some(handle) = owner else {
            // Unsolicited or duplicate block: attribute it to the session
            // that fetched this CID, falling back to the oldest session.
            let dup = handles
                .iter()
                .copied()
                .find(|h| self.sessions.get(h).is_some_and(|s| s.was_delivered(&cid)))
                .or(handles.first().copied());
            if let Some(h) = dup {
                if let Some(s) = self.sessions.get_mut(&h) {
                    s.count_duplicate();
                    out.push(EngineOutput::DuplicateBlock { session: h });
                }
            }
            return out;
        };
        let now = self.clock_nanos;
        let cancels =
            self.sessions.get_mut(&handle).map(|s| s.on_block(from, &cid, now)).unwrap_or_default();
        for (to, msg) in cancels {
            out.extend(self.send(to, msg));
        }
        store.put(cid.clone(), data.clone());
        out.push(EngineOutput::BlockStored { session: handle, cid: cid.clone() });
        // Discover child wants from branch nodes.
        if cid.codec() == Multicodec::DagPb {
            if let Ok(node) = DagNode::decode(&data) {
                for link in node.links {
                    self.want(handle, link.cid, store, &mut out);
                }
            }
        }
        self.check_complete(handle, &mut out);
        out
    }

    fn check_complete(&mut self, handle: SessionHandle, out: &mut Vec<EngineOutput>) {
        if let Some(session) = self.sessions.get_mut(&handle) {
            if session.outstanding() == 0 && !session.is_complete() {
                session.set_complete();
                out.push(EngineOutput::SessionComplete { session: handle });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use merkledag::{DagBuilder, DagLayout, FixedSizeChunker, MemoryBlockStore};
    use multiformats::Keypair;

    fn peer(seed: u64) -> PeerId {
        Keypair::from_seed(seed).peer_id()
    }

    /// Drives a client engine against server engines until quiescent.
    fn run_exchange(
        client: &mut BitswapEngine,
        client_store: &mut MemoryBlockStore,
        servers: &mut [(PeerId, BitswapEngine, MemoryBlockStore)],
        initial: Vec<EngineOutput>,
        client_id: &PeerId,
    ) -> (bool, Vec<Cid>) {
        let mut queue: VecDeque<(PeerId, PeerId, Message)> = VecDeque::new(); // (from, to, msg)
        let mut complete = false;
        let mut stored = Vec::new();
        let absorb = |outs: Vec<EngineOutput>,
                      sender: &PeerId,
                      queue: &mut VecDeque<(PeerId, PeerId, Message)>,
                      complete: &mut bool,
                      stored: &mut dyn FnMut(Cid)| {
            for o in outs {
                match o {
                    EngineOutput::Send { to, message } => {
                        queue.push_back((sender.clone(), to, message))
                    }
                    EngineOutput::SessionComplete { .. } => *complete = true,
                    EngineOutput::BlockStored { cid, .. } => stored(cid),
                    EngineOutput::WantFailed { .. } | EngineOutput::DuplicateBlock { .. } => {}
                }
            }
        };
        absorb(initial, client_id, &mut queue, &mut complete, &mut |c| stored.push(c));
        let mut guard = 0;
        while let Some((from, to, msg)) = queue.pop_front() {
            guard += 1;
            assert!(guard < 100_000, "exchange did not quiesce");
            if to == *client_id {
                let outs = client.handle_inbound(&from, msg, client_store);
                absorb(outs, client_id, &mut queue, &mut complete, &mut |c| stored.push(c));
            } else if let Some((sid, engine, store)) =
                servers.iter_mut().find(|(id, _, _)| *id == to)
            {
                let outs = engine.handle_inbound(&from, msg, store);
                let sid = sid.clone();
                absorb(outs, &sid, &mut queue, &mut complete, &mut |c| stored.push(c));
            }
        }
        (complete, stored)
    }

    fn seeded_server(seed: u64, data: &Bytes) -> ((PeerId, BitswapEngine, MemoryBlockStore), Cid) {
        let mut store = MemoryBlockStore::new();
        let root = DagBuilder::new(&mut store)
            .with_layout(DagLayout { fanout: 4 })
            .add_with_chunker(data, &FixedSizeChunker::new(256))
            .unwrap()
            .root;
        ((peer(seed), BitswapEngine::new(), store), root)
    }

    #[test]
    fn fetch_multi_block_dag() {
        let data = Bytes::from((0..2000u32).map(|i| (i % 255) as u8).collect::<Vec<_>>());
        let (server, root) = seeded_server(10, &data);
        let mut servers = vec![server];
        let mut client = BitswapEngine::new();
        let mut client_store = MemoryBlockStore::new();
        let me = peer(1);
        let (handle, init) = client.start_session(root.clone(), vec![peer(10)], &mut client_store);
        let (complete, stored) =
            run_exchange(&mut client, &mut client_store, &mut servers, init, &me);
        assert!(complete, "session must complete");
        assert!(stored.contains(&root));
        // The file reassembles from the client's store.
        let out = merkledag::Resolver::new(&mut client_store).read_file(&root).unwrap();
        assert_eq!(out, data);
        let st = client.session_state(handle).unwrap();
        assert!(st.complete);
        assert_eq!(st.outstanding, 0);
        assert!(st.received >= 8, "expected 8 leaves + branches, got {}", st.received);
    }

    #[test]
    fn swarm_fetch_spreads_load_over_servers() {
        // Three seeded servers: the session's splitter must pull blocks
        // from every one of them, not hammer the first.
        let data = Bytes::from((0..4000u32).map(|i| (i % 251) as u8).collect::<Vec<_>>());
        let (s1, root) = seeded_server(10, &data);
        let (s2, _) = seeded_server(11, &data);
        let (s3, _) = seeded_server(12, &data);
        let mut servers = vec![s1, s2, s3];
        let mut client = BitswapEngine::new();
        let mut client_store = MemoryBlockStore::new();
        let me = peer(1);
        let (handle, init) = client.start_session(
            root.clone(),
            vec![peer(10), peer(11), peer(12)],
            &mut client_store,
        );
        let (complete, _) = run_exchange(&mut client, &mut client_store, &mut servers, init, &me);
        assert!(complete);
        assert_eq!(merkledag::Resolver::new(&mut client_store).read_file(&root).unwrap(), data);
        let st = client.session_state(handle).unwrap();
        assert_eq!(st.duplicates, 0, "duplicate factor 1 must fetch each block once");
        for (id, engine, _) in &servers {
            assert!(
                engine.counts_sent.block > 0,
                "server {id:?} served no blocks — splitter did not spread"
            );
        }
    }

    #[test]
    fn local_blocks_short_circuit() {
        let data = Bytes::from(vec![5u8; 1000]);
        let mut store = MemoryBlockStore::new();
        let root = DagBuilder::new(&mut store).add(&data).unwrap().root;
        let mut client = BitswapEngine::new();
        // Root already local: session completes with zero messages.
        let (_, outs) = client.start_session(root, vec![peer(10)], &mut store);
        assert_eq!(outs.len(), 1);
        assert!(matches!(outs[0], EngineOutput::SessionComplete { .. }));
    }

    #[test]
    fn want_failed_when_all_deny() {
        let mut client = BitswapEngine::new();
        let mut store = MemoryBlockStore::new();
        let missing = Cid::from_raw_data(b"nobody has this");
        let me = peer(1);
        let (handle, init) =
            client.start_session(missing.clone(), vec![peer(10), peer(11)], &mut store);
        // Two empty servers.
        let mut servers = [
            (peer(10), BitswapEngine::new(), MemoryBlockStore::new()),
            (peer(11), BitswapEngine::new(), MemoryBlockStore::new()),
        ];
        let mut queue: VecDeque<(PeerId, PeerId, Message)> = VecDeque::new();
        for o in init {
            if let EngineOutput::Send { to, message } = o {
                queue.push_back((me.clone(), to, message));
            }
        }
        let mut failed = None;
        while let Some((from, to, msg)) = queue.pop_front() {
            if to == me {
                for o in client.handle_inbound(&from, msg, &mut store) {
                    match o {
                        EngineOutput::Send { to, message } => {
                            queue.push_back((me.clone(), to, message))
                        }
                        EngineOutput::WantFailed { session, cid } => failed = Some((session, cid)),
                        _ => {}
                    }
                }
            } else if let Some((sid, engine, sstore)) =
                servers.iter_mut().find(|(id, _, _)| *id == to)
            {
                let sid = sid.clone();
                for o in engine.handle_inbound(&from, msg, sstore) {
                    if let EngineOutput::Send { to, message } = o {
                        queue.push_back((sid.clone(), to, message));
                    }
                }
            }
        }
        assert_eq!(failed, Some((handle, missing)));
    }

    #[test]
    fn dht_fallback_via_add_session_peer() {
        // Session stalls with an empty peer set, then a provider found via
        // the "DHT" is added and the fetch completes.
        let data = Bytes::from(vec![9u8; 600]);
        let (server, root) = seeded_server(20, &data);
        let mut servers = vec![server];
        let mut client = BitswapEngine::new();
        let mut store = MemoryBlockStore::new();
        let me = peer(1);
        let (handle, init) = client.start_session(root.clone(), vec![], &mut store);
        assert!(init.iter().any(|o| matches!(o, EngineOutput::WantFailed { .. })));
        let follow = client.add_session_peer(handle, peer(20), &mut store);
        let (complete, _) = run_exchange(&mut client, &mut store, &mut servers, follow, &me);
        assert!(complete);
        assert_eq!(merkledag::Resolver::new(&mut store).read_file(&root).unwrap(), data);
    }

    #[test]
    fn corrupt_block_rejected() {
        let mut client = BitswapEngine::new();
        let mut store = MemoryBlockStore::new();
        let cid = Cid::from_raw_data(b"the real content");
        let (handle, _) = client.start_session(cid.clone(), vec![peer(10)], &mut store);
        let outs = client.handle_inbound(
            &peer(10),
            Message::Block { cid: cid.clone(), data: Bytes::from_static(b"FORGED") },
            &mut store,
        );
        assert!(outs.is_empty(), "forged block produces no progress");
        assert!(!store.has(&cid));
        let st = client.session_state(handle).unwrap();
        assert_eq!(st.received, 0);
        assert_eq!(st.outstanding, 1, "want stays outstanding");
    }

    #[test]
    fn server_side_answers() {
        let mut server = BitswapEngine::new();
        let mut store = MemoryBlockStore::new();
        let data = Bytes::from_static(b"block!");
        let cid = Cid::from_raw_data(&data);
        store.put(cid.clone(), data.clone());
        let asker = peer(2);

        let outs = server.handle_inbound(&asker, Message::WantHave(cid.clone()), &mut store);
        assert_eq!(
            outs,
            vec![EngineOutput::Send { to: asker.clone(), message: Message::Have(cid.clone()) }]
        );
        let outs = server.handle_inbound(&asker, Message::WantBlock(cid.clone()), &mut store);
        assert_eq!(
            outs,
            vec![EngineOutput::Send {
                to: asker.clone(),
                message: Message::Block { cid: cid.clone(), data }
            }]
        );
        let missing = Cid::from_raw_data(b"no");
        let outs = server.handle_inbound(&asker, Message::WantHave(missing.clone()), &mut store);
        assert_eq!(
            outs,
            vec![EngineOutput::Send { to: asker, message: Message::DontHave(missing) }]
        );
    }

    #[test]
    fn cancel_session_emits_cancels() {
        let mut client = BitswapEngine::new();
        let mut store = MemoryBlockStore::new();
        let cid = Cid::from_raw_data(b"will cancel");
        let (handle, _) = client.start_session(cid.clone(), vec![peer(10), peer(11)], &mut store);
        let outs = client.cancel_session(handle);
        let cancels = outs
            .iter()
            .filter(|o| matches!(o, EngineOutput::Send { message: Message::Cancel(_), .. }))
            .count();
        assert_eq!(cancels, 2);
        assert!(client.session_state(handle).is_none());
    }

    #[test]
    fn failover_to_second_haver() {
        // Peer A says HAVE then reneges with DONT_HAVE on WANT-BLOCK; the
        // engine must fail over to peer B who also said HAVE.
        let data = Bytes::from_static(b"precious");
        let cid = Cid::from_raw_data(&data);
        let mut client = BitswapEngine::new();
        let mut store = MemoryBlockStore::new();
        let (_, init) = client.start_session(cid.clone(), vec![peer(10), peer(11)], &mut store);
        assert_eq!(init.len(), 2); // two WANT-HAVEs
                                   // Both reply HAVE; the first (peer 10) gets the WANT-BLOCK.
        let o1 = client.handle_inbound(&peer(10), Message::Have(cid.clone()), &mut store);
        assert_eq!(
            o1,
            vec![EngineOutput::Send { to: peer(10), message: Message::WantBlock(cid.clone()) }]
        );
        let o2 = client.handle_inbound(&peer(11), Message::Have(cid.clone()), &mut store);
        assert!(o2.is_empty(), "second HAVE is a fallback, no extra request");
        // Peer 10 reneges.
        let o3 = client.handle_inbound(&peer(10), Message::DontHave(cid.clone()), &mut store);
        assert_eq!(
            o3,
            vec![EngineOutput::Send { to: peer(11), message: Message::WantBlock(cid.clone()) }]
        );
        // Peer 11 delivers.
        let o4 =
            client.handle_inbound(&peer(11), Message::Block { cid: cid.clone(), data }, &mut store);
        assert!(o4.iter().any(|o| matches!(o, EngineOutput::SessionComplete { .. })));
        assert!(store.has(&cid));
    }

    #[test]
    fn crashed_peer_reroutes_inflight_wants() {
        // Peer A wins the WANT-BLOCK and crashes; peer_disconnected must
        // re-queue the want to peer B, and B's block completes the fetch.
        let data = Bytes::from_static(b"survivor");
        let cid = Cid::from_raw_data(&data);
        let mut client = BitswapEngine::new();
        let mut store = MemoryBlockStore::new();
        let (handle, _) = client.start_session(cid.clone(), vec![peer(10), peer(11)], &mut store);
        client.handle_inbound(&peer(10), Message::Have(cid.clone()), &mut store);
        client.handle_inbound(&peer(11), Message::Have(cid.clone()), &mut store);
        let outs = client.peer_disconnected(&peer(10));
        assert_eq!(
            outs,
            vec![EngineOutput::Send { to: peer(11), message: Message::WantBlock(cid.clone()) }]
        );
        let o =
            client.handle_inbound(&peer(11), Message::Block { cid: cid.clone(), data }, &mut store);
        assert!(o.iter().any(|o| matches!(o, EngineOutput::SessionComplete { .. })));
        let st = client.session_state(handle).unwrap();
        assert_eq!(st.reroutes, 1);
        assert!(st.complete);
    }

    #[test]
    fn disconnect_by_session_groups_without_changing_the_flat_view() {
        // Two sessions both in flight at the crashing peer: the grouped
        // API attributes each re-route to its session, and flattening it
        // reproduces peer_disconnected's exact output stream.
        let d1 = Bytes::from_static(b"first");
        let d2 = Bytes::from_static(b"second");
        let c1 = Cid::from_raw_data(&d1);
        let c2 = Cid::from_raw_data(&d2);
        let mut a = BitswapEngine::new();
        let mut b = BitswapEngine::new();
        let mut store_a = MemoryBlockStore::new();
        let mut store_b = MemoryBlockStore::new();
        let (h1, _) = a.start_session(c1.clone(), vec![peer(10), peer(11)], &mut store_a);
        let (h2, _) = a.start_session(c2.clone(), vec![peer(10)], &mut store_a);
        let (_, _) = b.start_session(c1.clone(), vec![peer(10), peer(11)], &mut store_b);
        let (_, _) = b.start_session(c2.clone(), vec![peer(10)], &mut store_b);
        for eng in [&mut a, &mut b] {
            let store = &mut MemoryBlockStore::new();
            eng.handle_inbound(&peer(10), Message::Have(c1.clone()), store);
            eng.handle_inbound(&peer(11), Message::Have(c1.clone()), store);
            eng.handle_inbound(&peer(10), Message::Have(c2.clone()), store);
        }
        let grouped = a.peer_disconnected_by_session(&peer(10));
        let flat = b.peer_disconnected(&peer(10));
        assert_eq!(grouped.len(), 2, "both sessions produced outputs: {grouped:?}");
        assert_eq!(grouped[0].0, h1);
        assert_eq!(grouped[1].0, h2);
        // Session 1 re-routes to the surviving fallback; session 2 had no
        // survivor and fails the want.
        assert!(matches!(
            grouped[0].1[0],
            EngineOutput::Send { ref to, message: Message::WantBlock(_) } if *to == peer(11)
        ));
        assert!(grouped[1].1.iter().any(|o| matches!(o, EngineOutput::WantFailed { .. })));
        let flattened: Vec<EngineOutput> = grouped.into_iter().flat_map(|(_, outs)| outs).collect();
        assert_eq!(flattened, flat);
    }

    #[test]
    fn duplicate_blocks_surface_as_outputs() {
        let data = Bytes::from_static(b"twice");
        let cid = Cid::from_raw_data(&data);
        let mut client = BitswapEngine::new();
        let mut store = MemoryBlockStore::new();
        let (handle, _) = client.start_session(cid.clone(), vec![peer(10)], &mut store);
        client.handle_inbound(
            &peer(10),
            Message::Block { cid: cid.clone(), data: data.clone() },
            &mut store,
        );
        // The same block arrives again (e.g. a slower duplicate target).
        let outs = client.handle_inbound(&peer(11), Message::Block { cid, data }, &mut store);
        assert_eq!(outs, vec![EngineOutput::DuplicateBlock { session: handle }]);
        let st = client.session_state(handle).unwrap();
        assert_eq!((st.received, st.duplicates), (1, 1));
    }

    #[test]
    fn ledger_tracks_traffic() {
        let mut server = BitswapEngine::new();
        let mut store = MemoryBlockStore::new();
        let data = Bytes::from(vec![1u8; 500]);
        let cid = Cid::from_raw_data(&data);
        store.put(cid.clone(), data);
        let asker = peer(3);
        server.handle_inbound(&asker, Message::WantBlock(cid), &mut store);
        let entry = server.ledger.entry(&asker);
        assert_eq!(entry.received, 40); // the WANT_BLOCK
        assert_eq!(entry.sent, 540); // the BLOCK
        assert_eq!(entry.blocks, 1);
    }
}
