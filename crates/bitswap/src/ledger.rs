//! Per-peer exchange ledgers.
//!
//! Bitswap tracks bytes sent to and received from each partner. IPFS does
//! not enforce tit-for-tat (the paper §7 notes IPFS "does not incentivize
//! data storage, sharing, or participation"), but the ledger is kept for
//! diagnostics and because the debt ratio feeds Bitswap's send-priority
//! heuristics in the reference implementation.

use multiformats::PeerId;
use std::collections::HashMap;

/// Byte accounting with one entry per exchange partner.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    entries: HashMap<PeerId, Entry>,
}

/// Counters for one partner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Entry {
    /// Bytes we sent to the partner.
    pub sent: u64,
    /// Bytes we received from the partner.
    pub received: u64,
    /// Block messages exchanged (both directions).
    pub blocks: u64,
}

impl Entry {
    /// Debt ratio as defined by Bitswap: sent / (received + 1).
    pub fn debt_ratio(&self) -> f64 {
        self.sent as f64 / (self.received as f64 + 1.0)
    }
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Records bytes sent to `peer`.
    pub fn record_sent(&mut self, peer: &PeerId, bytes: u64, is_block: bool) {
        let e = self.entries.entry(peer.clone()).or_default();
        e.sent += bytes;
        if is_block {
            e.blocks += 1;
        }
    }

    /// Records bytes received from `peer`.
    pub fn record_received(&mut self, peer: &PeerId, bytes: u64, is_block: bool) {
        let e = self.entries.entry(peer.clone()).or_default();
        e.received += bytes;
        if is_block {
            e.blocks += 1;
        }
    }

    /// The entry for `peer` (zeroes if never seen).
    pub fn entry(&self, peer: &PeerId) -> Entry {
        self.entries.get(peer).copied().unwrap_or_default()
    }

    /// Total bytes sent across all partners.
    pub fn total_sent(&self) -> u64 {
        self.entries.values().map(|e| e.sent).sum()
    }

    /// Total bytes received across all partners.
    pub fn total_received(&self) -> u64 {
        self.entries.values().map(|e| e.received).sum()
    }

    /// Number of partners with any traffic.
    pub fn partners(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiformats::Keypair;

    #[test]
    fn accounting_accumulates() {
        let mut l = Ledger::new();
        let p = Keypair::from_seed(1).peer_id();
        l.record_sent(&p, 100, false);
        l.record_sent(&p, 900, true);
        l.record_received(&p, 500, true);
        let e = l.entry(&p);
        assert_eq!(e.sent, 1000);
        assert_eq!(e.received, 500);
        assert_eq!(e.blocks, 2);
        assert_eq!(l.total_sent(), 1000);
        assert_eq!(l.partners(), 1);
    }

    #[test]
    fn debt_ratio() {
        let e = Entry { sent: 999, received: 0, blocks: 0 };
        assert!((e.debt_ratio() - 999.0).abs() < 1e-9);
        let balanced = Entry { sent: 1000, received: 999, blocks: 0 };
        assert!(balanced.debt_ratio() < 1.01);
    }

    #[test]
    fn unknown_peer_is_zero() {
        let l = Ledger::new();
        assert_eq!(l.entry(&Keypair::from_seed(9).peer_id()), Entry::default());
    }
}
