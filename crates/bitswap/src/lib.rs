//! Bitswap: the IPFS block-exchange protocol (paper §3.2, "Content
//! Exchange").
//!
//! "Bitswap issues requests for the content items in *wantlists*. Requests
//! are sent using an IWANT-HAVE message. Recipient peers that have the
//! block reply with a corresponding IHAVE message. The requesting peer
//! finally responds with an IWANT-BLOCK message. Receipt of the requested
//! block terminates the exchange."
//!
//! Bitswap is also used *opportunistically* before any DHT lookup: the
//! requestor broadcasts WANT-HAVE to all currently-connected peers and only
//! falls back to the DHT after a 1 s timeout (§3.2) — the timeout itself is
//! driven by the retrieval pipeline in `ipfs-core`.
//!
//! - [`message`] — the wire messages (WANT-HAVE / HAVE / DONT-HAVE /
//!   WANT-BLOCK / BLOCK / CANCEL).
//! - [`ledger`] — per-peer byte accounting (exchange ledgers).
//! - [`engine`] — the sans-io engine: serves inbound wants from a
//!   blockstore and runs client sessions that fetch whole DAGs
//!   block-by-block, discovering child links as branch nodes arrive.
//! - [`session`] — the per-transfer session layer (à la go-bitswap /
//!   iroh): candidate-peer scoring, want splitting with a configurable
//!   duplicate factor, renege/crash re-routing, duplicate accounting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod ledger;
pub mod message;
pub mod session;

pub use engine::{BitswapEngine, EngineOutput, MessageCounts, SessionHandle, SessionState};
pub use ledger::Ledger;
pub use message::Message;
pub use session::{Session, SessionConfig, SessionStats};

/// Errors surfaced by the Bitswap engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A received block did not hash to the CID it was sent for.
    BadBlock(multiformats::Cid),
    /// Unknown session handle.
    UnknownSession,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::BadBlock(c) => write!(f, "block does not match CID {c}"),
            Error::UnknownSession => write!(f, "unknown bitswap session"),
        }
    }
}

impl std::error::Error for Error {}
