//! Bitswap wire messages.

use bytes::Bytes;
use multiformats::Cid;

/// One Bitswap protocol message. Real Bitswap batches entries per envelope;
/// we model one entry per message, which is equivalent under a
/// latency-dominated cost model (the simulator charges per-message latency
/// once per burst between the same pair).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// "Do you have this block?" — sent opportunistically to connected
    /// peers and to discovered providers.
    WantHave(Cid),
    /// "I have this block."
    Have(Cid),
    /// "I do not have this block." (Sent when the requester asked for
    /// send-dont-have behaviour; keeps sessions from waiting on silence.)
    DontHave(Cid),
    /// "Send me this block now."
    WantBlock(Cid),
    /// The block itself.
    Block {
        /// The block's CID.
        cid: Cid,
        /// The payload.
        data: Bytes,
    },
    /// "I no longer want this CID" (sent when a session obtains a block
    /// elsewhere or is cancelled).
    Cancel(Cid),
}

impl Message {
    /// The CID the message concerns.
    pub fn cid(&self) -> &Cid {
        match self {
            Message::WantHave(c)
            | Message::Have(c)
            | Message::DontHave(c)
            | Message::WantBlock(c)
            | Message::Cancel(c) => c,
            Message::Block { cid, .. } => cid,
        }
    }

    /// Approximate wire size in bytes (CID ≈ 36 B framed, plus payload for
    /// blocks) — used by the simulator's bandwidth model and the ledgers.
    pub fn wire_size(&self) -> u64 {
        match self {
            Message::Block { data, .. } => 40 + data.len() as u64,
            _ => 40,
        }
    }

    /// Short name for logs.
    pub fn name(&self) -> &'static str {
        match self {
            Message::WantHave(_) => "WANT_HAVE",
            Message::Have(_) => "HAVE",
            Message::DontHave(_) => "DONT_HAVE",
            Message::WantBlock(_) => "WANT_BLOCK",
            Message::Block { .. } => "BLOCK",
            Message::Cancel(_) => "CANCEL",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cid_accessor_covers_all_variants() {
        let cid = Cid::from_raw_data(b"b");
        let msgs = [
            Message::WantHave(cid.clone()),
            Message::Have(cid.clone()),
            Message::DontHave(cid.clone()),
            Message::WantBlock(cid.clone()),
            Message::Block { cid: cid.clone(), data: Bytes::from_static(b"b") },
            Message::Cancel(cid.clone()),
        ];
        for m in &msgs {
            assert_eq!(m.cid(), &cid, "{}", m.name());
        }
    }

    #[test]
    fn block_wire_size_includes_payload() {
        let cid = Cid::from_raw_data(b"data");
        let small = Message::WantHave(cid.clone());
        let block = Message::Block { cid, data: Bytes::from(vec![0u8; 1000]) };
        assert_eq!(small.wire_size(), 40);
        assert_eq!(block.wire_size(), 1040);
    }
}
