//! Offline stand-in for the `proptest` crate covering the subset this
//! workspace uses: the `proptest!` macro (module-of-tests and inline
//! closure forms), `any::<T>()`, integer-range strategies, tuple and
//! `collection::vec` composition, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest: inputs are generated from a
//! deterministic per-test RNG (seeded from the test name) and failures
//! are reported by panicking on the offending case without shrinking.
//! Failing seeds therefore reproduce exactly across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies while generating one test case.
pub type TestRng = StdRng;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Builds the deterministic RNG for a named test.
pub fn test_rng(name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// ---- integer / float range strategies ----

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---- any::<T>() ----

/// Types with a full-domain "arbitrary" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.random_range(-1.0e12..1.0e12)
    }
}

/// Strategy adapter returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy that always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- tuple strategies ----

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---- collections ----

/// Number-of-elements bound for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_exclusive: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange { lo: r.start, hi_exclusive: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Vec`s of values from `elem` with a length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    /// Mirror of proptest's `prelude::prop` re-export of the crate root.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Just, ProptestConfig,
        Strategy,
    };
}

// ---- macros ----

/// Assertion macros: identical to `assert*` here (no shrink reporting).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The `proptest!` macro.
///
/// Supported forms:
/// - module form: `proptest! { #![proptest_config(cfg)] #[test] fn name(x in strat, ..) { .. } .. }`
///   (config attribute optional);
/// - inline form: `proptest!(cfg, |(x in strat, ..)| { .. })`, which runs
///   immediately in the enclosing test.
#[macro_export]
macro_rules! proptest {
    // Module form with a leading config attribute. This arm must come
    // first: `#![..]`/`fn` inputs hard-error inside an `expr` fragment,
    // so they may never reach an arm that starts with `$cfg:expr`.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    // Module form without config.
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::ProptestConfig::default())
            $(#[$meta])* fn $($rest)*
        }
    };
    // Inline closure form with explicit config.
    ($cfg:expr, |($($pat:pat in $strat:expr),+ $(,)?)| $body:block) => {{
        let __cfg: $crate::ProptestConfig = $cfg;
        let mut __rng = $crate::test_rng(concat!(file!(), ":", line!()));
        for __case in 0..__cfg.cases {
            $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
            $body
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0u8..=4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn inline_form_runs() {
        let mut total = 0u32;
        proptest!(ProptestConfig::with_cases(16), |(pair in (any::<bool>(), 1u64..5))| {
            let (_flag, n) = pair;
            prop_assert!((1..5).contains(&n));
            total += 1;
        });
        assert_eq!(total, 16);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("fixed");
        let mut b = crate::test_rng("fixed");
        let s = crate::collection::vec(any::<u64>(), 5..6);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
