//! Offline stand-in for the `criterion` crate. It keeps the macro and
//! builder surface (`criterion_group!`, `criterion_main!`, groups,
//! throughput, `BenchmarkId`) but times each benchmark with a single
//! adaptive measurement loop instead of criterion's statistical engine.
//! Good enough to smoke-run benches and eyeball regressions offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing harness passed to bench closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration recorded by the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Times `f`, running it enough times to fill a small budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up + calibration run.
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed();
        // Aim for ~20ms of total measurement, capped at 64 iterations.
        let budget = Duration::from_millis(20);
        let iters = if first.is_zero() {
            64
        } else {
            (budget.as_nanos() / first.as_nanos().max(1)).clamp(1, 64) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// Throughput annotation for a benchmark (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { last_ns: 0.0 };
        f(&mut b);
        report(name, b.last_ns, None);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string(), throughput: None }
    }
}

/// Group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { last_ns: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.label), b.last_ns, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { last_ns: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), b.last_ns, self.throughput);
        self
    }

    pub fn finish(self) {}
}

fn report(name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if ns_per_iter > 0.0 => {
            let gib_s = n as f64 / ns_per_iter; // bytes/ns == GB/s
            format!("  {:>10.3} GB/s", gib_s)
        }
        Some(Throughput::Elements(n)) if ns_per_iter > 0.0 => {
            format!("  {:>10.0} elem/s", n as f64 / ns_per_iter * 1e9)
        }
        _ => String::new(),
    };
    if ns_per_iter >= 1_000_000.0 {
        println!("bench {name:<48} {:>12.3} ms/iter{rate}", ns_per_iter / 1e6);
    } else if ns_per_iter >= 1_000.0 {
        println!("bench {name:<48} {:>12.3} us/iter{rate}", ns_per_iter / 1e3);
    } else {
        println!("bench {name:<48} {ns_per_iter:>12.1} ns/iter{rate}");
    }
}

/// Declares a benchmark group function, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group once.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness-less bench binaries with `--test`;
            // keep that mode to a fast smoke pass (closures still run once
            // inside `Bencher::iter`'s calibration call).
            $($group();)+
        }
    };
}
