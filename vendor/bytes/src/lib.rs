//! Offline stand-in for the `bytes` crate, providing the subset of the
//! `Bytes` API this workspace uses: a cheaply cloneable, immutable,
//! contiguous byte buffer. Cloning is O(1) (shared `Arc`), matching the
//! performance contract the simulation relies on when blocks fan out to
//! many peers.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    inner: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Bytes { inner: Repr::Static(&[]) }
    }

    /// Creates `Bytes` from a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { inner: Repr::Static(bytes) }
    }

    /// Copies the given slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { inner: Repr::Shared(Arc::from(data)) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Returns the contents as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }

    /// Returns a new `Bytes` for the given sub-range (copies the range).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes::copy_from_slice(&self.as_slice()[start..end])
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { inner: Repr::Shared(Arc::from(v.into_boxed_slice())) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes { inner: Repr::Shared(Arc::from(b)) }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_shallow_and_equal() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn static_and_empty() {
        let s = Bytes::from_static(b"hello");
        assert_eq!(s.len(), 5);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn slice_and_to_vec() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
        assert_eq!(b.slice(1..3).as_slice(), &[1, 2]);
        assert_eq!(b.to_vec(), vec![0, 1, 2, 3, 4]);
    }
}
