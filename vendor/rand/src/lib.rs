//! Offline stand-in for the `rand` crate (0.9 API surface used by this
//! workspace): `Rng::random_range` / `random` / `random_bool`,
//! `SeedableRng::seed_from_u64` / `from_seed`, and `rngs::StdRng`.
//!
//! `StdRng` here is xoshiro256** seeded via SplitMix64 — deterministic,
//! fast, and statistically solid for simulation workloads. It is NOT the
//! cryptographically secure generator the real crate ships; nothing in
//! this workspace needs one (keys are derived from explicit seeds).

/// Uniform sampling support for a range type over values of type `T`.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills the buffer with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bits = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bits[..chunk.len()]);
        }
    }
}

/// User-facing sampling methods, mirroring `rand 0.9`'s `Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from the given range (`a..b` or `a..=b`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Samples a value of a supported type uniformly at random.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be drawn from the "standard" distribution.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

/// Maps 64 random bits to a float uniform in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Rejection-sampled uniform integer in `[0, bound)` (Lemire-style).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Reject the tail so every residue class is equally likely.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R2: RngCore + ?Sized>(self, rng: &mut R2) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R2: RngCore + ?Sized>(self, rng: &mut R2) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span + 1);
                ((start as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R2: RngCore + ?Sized>(self, rng: &mut R2) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R2: RngCore + ?Sized>(self, rng: &mut R2) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let u = unit_f64(rng.next_u64()) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material (32 bytes for `StdRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bits = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bits[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b} outside tolerance");
        }
    }
}
