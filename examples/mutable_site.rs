//! A mutable website under an immutable name (IPNS, paper §3.3).
//!
//! CIDs are immutable — updating a site changes its root CID. IPNS gives
//! the publisher a stable name (the hash of its public key) that always
//! resolves, via a signed and sequenced record, to the *latest* root CID.
//!
//! ```sh
//! cargo run --release -p ipfs-examples --bin mutable_site
//! ```

use bytes::Bytes;
use ipfs_core::ipns::{IpnsRecord, IpnsStore, IPNS_VALIDITY};
use ipfs_examples::example_network;
use simnet::latency::VantagePoint;
use simnet::{SimDuration, SimTime};

fn main() {
    let (mut net, ids) =
        example_network(400, &[VantagePoint::EuCentral1, VantagePoint::UsWest1], 11);
    let [publisher, reader] = ids[..] else { unreachable!() };

    // The publisher's IPNS name: stable for the node's lifetime.
    let keypair = net.node(publisher).keypair().clone();
    let name = keypair.peer_id();
    println!("site name (IPNS): /ipns/{name}\n");

    for version in 1..=3u64 {
        // Build and publish this version of the site.
        let html = Bytes::from(format!(
            "<html><body><h1>My dweb site</h1><p>revision {version}</p></body></html>"
        ));
        let root = net.node_mut(publisher).add_content(&html).root;
        net.publish(publisher, root.clone());
        net.run_until_quiet();

        // Sign the IPNS record mapping name -> new root (sequence bumps),
        // and push it to the DHT servers nearest the name's key (§3.3).
        let record = IpnsRecord::sign(&keypair, root.clone(), version, net.now(), IPNS_VALIDITY);
        net.publish_ipns(publisher, &record);
        net.run_until_quiet();
        let pr = net.ipns_publish_reports.last().unwrap();
        println!(
            "published v{version}: /ipfs/{root} (IPNS record on {} DHT servers in {:.1}s)",
            pr.records_stored,
            pr.total.as_secs_f64()
        );

        // A reader resolves the *name* over the DHT and fetches whatever
        // it points at.
        net.resolve_ipns(reader, &name);
        net.run_until_quiet();
        let resolution = net.ipns_resolve_reports.last().unwrap().clone();
        assert!(resolution.success, "IPNS resolution must succeed");
        let resolved = resolution.record.unwrap().value;
        assert_eq!(resolved, root, "the immutable name tracks the newest CID");
        net.retrieve(reader, resolved.clone());
        net.run_until_quiet();
        let r = net.retrieve_reports.last().unwrap().clone();
        assert!(r.success);
        let page = net.node_mut(reader).read_content(&resolved).unwrap();
        println!(
            "  reader resolved /ipns/{}… -> fetched {} bytes in {:.2}s: {:?}...",
            &name.to_string()[..8],
            page.len(),
            r.total.as_secs_f64(),
            std::str::from_utf8(&page[..40]).unwrap()
        );
        net.disconnect_all(reader);
    }

    // Replay protection at the resolver's local cache: an attacker
    // re-serving v1's record is rejected because its sequence is stale.
    let mut cache = IpnsStore::new();
    let now = net.now();
    let v3 = net.node_mut(reader).ipns.resolve(&name, now).unwrap().clone();
    cache.put(v3, now).unwrap();
    let stale =
        IpnsRecord::sign(&keypair, multiformats::Cid::from_raw_data(b"old"), 1, now, IPNS_VALIDITY);
    let err = cache.put(stale, now).unwrap_err();
    println!("\nreplaying the v1 record is rejected: {err}");

    // Expiry: records go stale after their validity window (24 h default).
    let later = SimTime::ZERO + SimDuration::from_hours(200);
    assert!(cache.resolve(&name, later).is_none());
    println!("after the validity window the record expires and must be republished ✓");
}
