//! Quickstart: add a file to one IPFS node, publish it to the DHT, and
//! retrieve it from another node on the other side of the world.
//!
//! ```sh
//! cargo run --release -p ipfs-examples --bin quickstart
//! ```
//!
//! Walks the exact pipeline of the paper's Figure 3: import → CID →
//! publication walk → provider records, then opportunistic Bitswap → two
//! DHT walks → dial → verified content exchange.

use bytes::Bytes;
use ipfs_examples::{example_network, secs};
use simnet::latency::VantagePoint;

fn main() {
    println!("building a simulated IPFS network (800 peers, paper's churn/NAT mix)...");
    let (mut net, ids) =
        example_network(800, &[VantagePoint::EuCentral1, VantagePoint::UsWest1], 2022);
    let [frankfurt, california] = ids[..] else { unreachable!() };

    // 1. Import: chunk + Merkle DAG, all local (Figure 3, step 1).
    let document = Bytes::from(
        "Hello from the InterPlanetary File System reproduction!\n".repeat(20_000).into_bytes(),
    );
    let report = net.node_mut(california).add_content(&document);
    println!(
        "\nimported {} bytes at the California node:\n  root CID: {}\n  chunks: {} (+{} branch nodes), DAG depth {}",
        report.file_size, report.root, report.chunks, report.branch_nodes, report.depth
    );

    // 2. Publish: DHT walk to the 20 closest peers, then the fire-and-
    //    forget ADD_PROVIDER batch (Figure 3, steps 2-3).
    let cid = report.root;
    net.publish(california, cid.clone());
    net.run_until_quiet();
    let pub_report = net.publish_reports.last().expect("publish completes").clone();
    println!(
        "\npublished in {} (DHT walk {}, RPC batch {}), provider records on {} peers",
        secs(pub_report.total),
        secs(pub_report.dht_walk),
        secs(pub_report.rpc_batch),
        pub_report.records_stored
    );

    // 3. Retrieve from Frankfurt (Figure 3, steps 4-6).
    net.retrieve(frankfurt, cid.clone());
    net.run_until_quiet();
    let ret = net.retrieve_reports.last().expect("retrieve completes").clone();
    println!(
        "\nretrieved from Frankfurt in {}:\n  bitswap probe: {} (no connected peer had it -> 1s timeout)\n  provider-record walk: {}\n  peer-record walk:     {} (addrbook hit: {})\n  dial + fetch:         {}",
        secs(ret.total),
        secs(ret.bitswap_probe),
        secs(ret.provider_walk),
        secs(ret.peer_walk),
        ret.addrbook_hit,
        secs(ret.fetch),
    );
    println!("  retrieval stretch vs plain HTTPS (paper eq. 1): {:.1}x", ret.stretch());

    // 4. Self-certification: the fetched bytes hash back to the CID.
    let fetched =
        net.node_mut(frankfurt).read_content(&cid).expect("content must verify block-by-block");
    assert_eq!(fetched, document);
    println!("\ncontent verified: every block hashes to its CID ✓");
}
