//! Shared helpers for the example binaries: building a small simulated
//! IPFS network with a couple of user-controlled nodes.

use ipfs_core::{IpfsNetwork, NetworkConfig, NodeId};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration};

/// Builds a modest simulated network (`peers` background peers with the
/// paper's NAT/churn mix) plus one user-controlled node per vantage point.
/// Returns the network and the user node ids.
pub fn example_network(
    peers: usize,
    vantages: &[VantagePoint],
    seed: u64,
) -> (IpfsNetwork, Vec<NodeId>) {
    let pop = Population::generate(
        PopulationConfig {
            size: peers,
            nat_fraction: 0.455,
            horizon: SimDuration::from_hours(24),
            ..Default::default()
        },
        seed,
    );
    let net = IpfsNetwork::from_population(&pop, vantages, NetworkConfig::default(), seed);
    let ids = net.vantage_ids(vantages.len());
    (net, ids)
}

/// Pretty-prints a duration in seconds with millisecond precision.
pub fn secs(d: simnet::SimDuration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_network_builds() {
        let (net, ids) = example_network(150, &[VantagePoint::EuCentral1], 1);
        assert_eq!(ids.len(), 1);
        assert!(net.len() > 150);
        assert!(net.is_dialable(ids[0]));
    }
}
