//! Regional outage: script a two-minute partition of one vantage region
//! with a `faultsim` fault plan and watch retrieval success collapse and
//! recover.
//!
//! ```sh
//! cargo run --release -p ipfs-examples --bin regional_outage
//! ```
//!
//! A provider in California publishes a file; a requester in Frankfurt
//! retrieves it cold (disconnected, empty store) once every 15 seconds.
//! At t+60s the whole Europe-Central region is severed from the rest of
//! the network for two minutes — every dial across the cut is refused,
//! warm connections are severed, and in-flight messages are dropped —
//! then the partition heals. The success-rate table shows the three
//! phases: healthy, partitioned, recovered.

use bytes::Bytes;
use faultsim::FaultPlan;
use ipfs_core::{IpfsNetwork, NodeId};
use ipfs_examples::{example_network, secs};
use multiformats::PeerId;
use simnet::latency::{Region, VantagePoint};
use simnet::SimDuration;

/// Cold-retrieval reset: drop connections, forget the provider's
/// addresses, and delete fetched blocks so every attempt walks the DHT.
fn reset(net: &mut IpfsNetwork, requester: NodeId, provider_peer: &PeerId) {
    net.disconnect_all(requester);
    net.forget_address(requester, provider_peer);
    let node = net.node_mut(requester);
    let cids: Vec<_> = node.store.cids().cloned().collect();
    for c in cids {
        merkledag::BlockStore::delete(&mut node.store, &c);
    }
}

fn main() {
    println!("building a simulated IPFS network (800 peers, paper's churn/NAT mix)...");
    let (mut net, ids) =
        example_network(800, &[VantagePoint::UsWest1, VantagePoint::EuCentral1], 2022);
    let [california, frankfurt] = ids[..] else { unreachable!() };
    let provider_peer = net.peer_id(california).clone();

    let document = Bytes::from("outage drill payload\n".repeat(10_000).into_bytes());
    let cid = net.import_content(california, &document);
    net.publish(california, cid.clone());
    net.run_until_quiet();
    println!("published {} from California", cid);

    // Script the outage: Europe-Central drops off the network at t+60s
    // for two minutes, then heals.
    let outage_start = net.now() + SimDuration::from_secs(60);
    let outage = SimDuration::from_secs(120);
    let mut plan = FaultPlan::new();
    plan.region_outage(outage_start, outage, Region::EuropeCentral);
    net.install_fault_plan(plan);
    println!("fault plan installed: Europe-Central severed at {outage_start} for {outage}\n");

    // Retrieve cold from Frankfurt every 15 s across the whole episode.
    println!("{:>10}  {:^11}  {:>9}  notes", "time", "phase", "result");
    let mut attempts = [(0u32, 0u32); 3]; // ok/total per phase
    let heal = outage_start + outage;
    for _ in 0..20u64 {
        net.retrieve(frankfurt, cid.clone());
        net.run_until_quiet();
        let r = net.retrieve_reports.last().expect("retrieval completes").clone();
        reset(&mut net, frankfurt, &provider_peer);
        let phase = if r.started_at < outage_start {
            0
        } else if r.started_at < heal {
            1
        } else {
            2
        };
        let phase_name = ["before", "partitioned", "after heal"][phase];
        attempts[phase].1 += 1;
        attempts[phase].0 += r.success as u32;
        println!(
            "{:>10}  {:^11}  {:>9}  total {}",
            format!("{}", r.started_at),
            phase_name,
            if r.success { "ok" } else { "FAIL" },
            secs(r.total),
        );
        // Step to the next attempt slot.
        net.run_until(r.started_at + SimDuration::from_secs(15));
    }

    println!("\nretrieval success rate:");
    for (i, name) in ["before outage", "during outage", "after heal"].iter().enumerate() {
        let (ok, total) = attempts[i];
        if total > 0 {
            println!("  {name:<14} {ok}/{total}");
        }
    }
    let (ok_during, n_during) = attempts[1];
    let (ok_after, n_after) = attempts[2];
    assert_eq!(ok_during, 0, "no retrieval may cross an active partition");
    assert!(n_during > 0 && n_after > 0, "episode must cover all phases");
    assert!(ok_after > 0, "retrievals must recover after heal");
    println!("\npartition held ({ok_during}/{n_during} during) and recovery confirmed ✓");
}
