//! Browser users on an IPFS gateway (paper §3.4, §6.3).
//!
//! Users without IPFS software fetch `https://gateway/ipfs/{CID}`; the
//! gateway bridges HTTP to the P2P network through two cache tiers. This
//! example serves a morning of traffic and shows the latency cliff between
//! cache hits and cold P2P retrievals.
//!
//! ```sh
//! cargo run --release -p ipfs-examples --bin gateway_browsing
//! ```

use gateway::workload::{GatewayWorkload, WorkloadConfig};
use gateway::{Gateway, GatewayConfig, ServedBy};
use ipfs_examples::example_network;
use simnet::latency::VantagePoint;

fn main() {
    println!("building the network and a US-west gateway...");
    let (mut net, ids) = example_network(600, &[VantagePoint::UsWest1], 23);
    let gw_node = ids[0];

    let workload = GatewayWorkload::generate(WorkloadConfig {
        catalog_size: 400,
        users: 150,
        requests: 2_500,
        seed: 23,
        ..Default::default()
    });
    let mut gw = Gateway::new(gw_node, GatewayConfig::default());
    let providers: Vec<_> =
        net.server_ids().into_iter().filter(|&i| net.is_dialable(i)).take(25).collect();
    gw.install_catalog(&mut net, &workload, &providers);
    println!(
        "catalog installed: {} objects ({} pinned by the storage initiatives)\n",
        workload.objects.len(),
        workload.objects.iter().filter(|o| o.pinned).count()
    );

    let log = gw.serve_all(&mut net, &workload);

    // Show a few individual requests end-to-end.
    println!("sample requests:");
    for entry in log.iter().take(8) {
        println!(
            "  t+{:>8.1}s  user#{:<4} [{}]  GET /ipfs/{:.16}…  -> {:<15} {:>9.3}s  {:>8} B",
            entry.at.as_secs_f64(),
            entry.user,
            entry.country.code(),
            entry.cid.to_string(),
            entry.served_by.label(),
            entry.latency.as_secs_f64(),
            entry.bytes,
        );
    }

    // Tier summary.
    println!("\ntier summary over {} requests:", log.len());
    for tier in
        [ServedBy::NginxCache, ServedBy::NodeStore, ServedBy::Network, ServedBy::NegativeCache]
    {
        let entries: Vec<_> = log.iter().filter(|e| e.served_by == tier).collect();
        if entries.is_empty() {
            continue;
        }
        let mut lats: Vec<f64> = entries.iter().map(|e| e.latency.as_secs_f64()).collect();
        lats.sort_by(f64::total_cmp);
        println!(
            "  {:<16} {:>5} requests ({:>4.1} %)   median latency {:>8.3}s",
            tier.label(),
            entries.len(),
            100.0 * entries.len() as f64 / log.len() as f64,
            lats[lats.len() / 2],
        );
    }
    let under_250ms =
        log.iter().filter(|e| e.latency.as_millis() < 250).count() as f64 / log.len() as f64;
    println!(
        "\n{:.0} % of requests served in under 250 ms (paper: 76 %) — demand aggregation at work",
        100.0 * under_250ms
    );
}
