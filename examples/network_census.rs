//! Measuring a decentralized network you don't control (paper §4).
//!
//! No one has a complete view of IPFS, so the paper builds measurement
//! tooling: a DHT crawler that enumerates k-buckets from the bootstrap
//! peers, and an adaptive churn monitor. This example runs both against a
//! simulated network and prints the census a researcher would get.
//!
//! ```sh
//! cargo run --release -p ipfs-examples --bin network_census
//! ```

use crawler::{ChurnMonitor, CrawlConfig, Crawler, MonitorConfig};
use ipfs_core::{IpfsNetwork, NetworkConfig};
use simnet::latency::VantagePoint;
use simnet::{Population, PopulationConfig, SimDuration};
use std::collections::HashMap;

fn main() {
    println!("generating a 2000-peer population and network...");
    let pop = Population::generate(
        PopulationConfig {
            size: 2_000,
            nat_fraction: 0.455,
            horizon: SimDuration::from_hours(12),
            ..Default::default()
        },
        31,
    );
    let mut net = IpfsNetwork::from_population(
        &pop,
        &[VantagePoint::EuCentral1], // the paper crawls from Germany
        NetworkConfig::default(),
        31,
    );

    // --- crawl every 30 minutes for three hours ---
    let crawler = Crawler::new(CrawlConfig::default());
    println!("\ncrawl series (every 30 min, like §4.1):");
    println!("  t(h)   peers  dialable  undialable  est.duration");
    for _ in 0..6 {
        let snap = crawler.crawl(&net, &pop);
        println!(
            "  {:>4.1}  {:>6}  {:>8}  {:>10}  {:>8.1}s",
            net.now().as_secs_f64() / 3600.0,
            snap.peers.len(),
            snap.dialable,
            snap.undialable,
            snap.duration.as_secs_f64()
        );
        net.run_for(SimDuration::from_mins(30));
    }

    // --- geography & infrastructure of the last crawl ---
    let snap = crawler.crawl(&net, &pop);
    let mut by_country: HashMap<&str, usize> = HashMap::new();
    for p in &snap.peers {
        *by_country.entry(p.country.code()).or_default() += 1;
    }
    let mut countries: Vec<_> = by_country.into_iter().collect();
    countries.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("\ntop countries in the crawl (paper Fig. 5: US 28.5 %, CN 24.2 %, ...):");
    for (code, n) in countries.iter().take(6) {
        println!(
            "  {:<6} {:>5}  ({:>4.1} %)",
            code,
            n,
            100.0 * *n as f64 / snap.peers.len() as f64
        );
    }
    let cloud = snap.peers.iter().filter(|p| p.cloud.is_some()).count();
    println!(
        "cloud-hosted: {:.1} % of crawled peers (paper Table 3: 2.29 %)",
        100.0 * cloud as f64 / snap.peers.len() as f64
    );

    // --- churn monitoring (§5.3) ---
    println!("\nrunning the adaptive churn monitor over 48 h of schedules...");
    let pop48 = Population::generate(
        PopulationConfig {
            size: 2_000,
            nat_fraction: 0.455,
            horizon: SimDuration::from_hours(48),
            ..Default::default()
        },
        31,
    );
    let (observations, summaries) = ChurnMonitor::new(MonitorConfig::default()).run(&pop48);
    let counted: Vec<f64> = observations
        .iter()
        .filter(|o| o.in_first_half)
        .map(|o| o.observed_uptime.as_secs_f64() / 3600.0)
        .collect();
    let under_8h = counted.iter().filter(|&&h| h < 8.0).count() as f64 / counted.len() as f64;
    let over_24h = counted.iter().filter(|&&h| h > 24.0).count() as f64 / counted.len() as f64;
    let reliable = summaries.iter().filter(|s| s.reachable_fraction > 0.9).count() as f64
        / summaries.len() as f64;
    println!(
        "  {} sessions observed; {:.1} % under 8 h (paper 87.6 %), {:.1} % over 24 h (paper 2.5 %)",
        counted.len(),
        100.0 * under_8h,
        100.0 * over_24h
    );
    println!("  reliable peers (>90 % uptime): {:.1} % (paper: 1.4 %)", 100.0 * reliable);
}
