//! Video on demand: one publisher, a swarm of viewers.
//!
//! §6.4 argues IPFS "suitable for various applications, including video on
//! demand". A studio in São Paulo publishes a 4 MB clip once; viewers in
//! five regions fetch it. Early viewers resolve via the DHT; because every
//! retriever can serve others over Bitswap, later viewers with warm
//! connections skip the DHT entirely — the swarm effect.
//!
//! ```sh
//! cargo run --release -p ipfs-examples --bin video_on_demand
//! ```

use bytes::Bytes;
use ipfs_examples::{example_network, secs};
use simnet::latency::VantagePoint;

fn main() {
    let vantages = [
        VantagePoint::SaEast1,    // the studio
        VantagePoint::EuCentral1, // viewers...
        VantagePoint::UsWest1,
        VantagePoint::ApSoutheast2,
        VantagePoint::AfSouth1,
        VantagePoint::MeSouth1,
    ];
    println!("building the network (1000 peers + 6 controlled nodes)...");
    let (mut net, ids) = example_network(1_000, &vantages, 7);
    let studio = ids[0];
    let viewers = &ids[1..];

    // A 4 MB "clip": 16 chunks of 256 kiB under one root.
    let clip = Bytes::from(
        (0..4 * 1024 * 1024u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect::<Vec<_>>(),
    );
    let report = net.node_mut(studio).add_content(&clip);
    println!(
        "studio published clip {} ({} chunks, {} bytes)",
        report.root, report.chunks, report.file_size
    );
    let cid = report.root;
    net.publish(studio, cid.clone());
    net.run_until_quiet();
    println!(
        "provider records stored on {} peers in {}\n",
        net.publish_reports[0].records_stored,
        secs(net.publish_reports[0].total)
    );

    // Wave 1: every viewer fetches cold, via the DHT.
    println!("--- wave 1: cold viewers (DHT discovery) ---");
    for (&viewer, vp) in viewers.iter().zip(&vantages[1..]) {
        net.retrieve(viewer, cid.clone());
        net.run_until_quiet();
        let r = net.retrieve_reports.last().unwrap();
        println!(
            "  {:<14} total {:>8}  (discover {:>8}, fetch {:>8}) via_bitswap={}",
            vp.label(),
            secs(r.total),
            secs(r.discover()),
            secs(r.fetch),
            r.via_bitswap
        );
        assert!(r.success);
    }

    // Wave 2: a second device per household — now a neighbour (the first
    // device) is connected and Bitswap satisfies the request in one RTT,
    // no DHT, no 1 s timeout.
    println!("\n--- wave 2: warm neighbours (opportunistic Bitswap, §3.2) ---");
    let second_wave = net.vantage_ids(vantages.len());
    for (&viewer, vp) in second_wave[1..].iter().zip(&vantages[1..]) {
        // Drop the local copy but keep the connection to the provider the
        // household router still holds.
        let node = net.node_mut(viewer);
        let cids: Vec<_> = node.store.cids().cloned().collect();
        for c in cids {
            merkledag::BlockStore::delete(&mut node.store, &c);
        }
        net.connect(viewer, studio);
        net.retrieve(viewer, cid.clone());
        net.run_until_quiet();
        let r = net.retrieve_reports.last().unwrap();
        println!("  {:<14} total {:>8}  via_bitswap={}", vp.label(), secs(r.total), r.via_bitswap);
        assert!(r.success);
        assert!(r.via_bitswap, "warm connection must satisfy via Bitswap");
    }

    // De-duplication: publishing a re-edit that shares most chunks.
    println!("\n--- re-edit: chunk de-duplication (§2.1 Merkle DAGs) ---");
    let mut v2 = clip.to_vec();
    v2.truncate(clip.len() - 256 * 1024); // drop the last scene
    v2.extend_from_slice(&[0xEE; 256 * 1024]); // new ending
    let report2 = net.node_mut(studio).add_content(&Bytes::from(v2));
    println!(
        "  v2 root {} — {} new chunks stored, {} deduplicated against v1",
        report2.root, report2.new_leaves, report2.deduplicated_leaves
    );
    assert!(report2.deduplicated_leaves >= 14, "most chunks must be reused");
}
