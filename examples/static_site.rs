//! A whole website under one CID: UnixFS directories and path resolution.
//!
//! Gateways serve `/ipfs/<root-cid>/path/inside/site` (paper §3.4). This
//! example publishes a directory tree, retrieves it from another region
//! (the directory nodes ride Bitswap like any other DAG nodes), and
//! resolves paths against the fetched tree.
//!
//! ```sh
//! cargo run --release -p ipfs-examples --bin static_site
//! ```

use bytes::Bytes;
use ipfs_examples::{example_network, secs};
use merkledag::unixfs::{resolve_path, DirectoryBuilder, PathTarget};
use merkledag::DagBuilder;
use simnet::latency::VantagePoint;

fn main() {
    let (mut net, ids) =
        example_network(500, &[VantagePoint::UsWest1, VantagePoint::EuCentral1], 57);
    let [publisher, reader] = ids[..] else { unreachable!() };

    // --- build the site: /index.html, /blog/hello.html, /assets/logo.bin ---
    let index =
        Bytes::from_static(b"<html><h1>my dweb site</h1><a href=blog/hello.html>blog</a></html>");
    let post = Bytes::from_static(b"<html><p>hello decentralized world</p></html>");
    let logo = Bytes::from(vec![0x89u8; 48 * 1024]);

    let root = {
        let node = net.node_mut(publisher);
        let index_rep = DagBuilder::new(&mut node.store).add(&index).unwrap();
        let post_rep = DagBuilder::new(&mut node.store).add(&post).unwrap();
        let logo_rep = DagBuilder::new(&mut node.store).add(&logo).unwrap();

        let mut blog = DirectoryBuilder::new();
        blog.add_entry("hello.html", post_rep.root, post_rep.file_size).unwrap();
        let blog_cid = blog.build(&mut node.store);

        let mut assets = DirectoryBuilder::new();
        assets.add_entry("logo.bin", logo_rep.root, logo_rep.file_size).unwrap();
        let assets_cid = assets.build(&mut node.store);

        let mut site = DirectoryBuilder::new();
        site.add_entry("index.html", index_rep.root, index_rep.file_size).unwrap();
        site.add_entry("blog", blog_cid, post_rep.file_size).unwrap();
        site.add_entry("assets", assets_cid, logo_rep.file_size).unwrap();
        site.build(&mut node.store)
    };
    println!("site root: /ipfs/{root}");

    // --- publish the single root CID ---
    net.publish(publisher, root.clone());
    net.run_until_quiet();
    println!(
        "published in {} (provider records on {} peers)\n",
        secs(net.publish_reports[0].total),
        net.publish_reports[0].records_stored
    );
    net.disconnect_all(publisher);

    // --- a reader on another continent fetches the whole tree ---
    net.retrieve(reader, root.clone());
    net.run_until_quiet();
    let rr = net.retrieve_reports.last().unwrap();
    assert!(rr.success);
    println!("reader fetched the site DAG in {}", secs(rr.total));

    // --- resolve paths against the verified local copy ---
    let store = &mut net.node_mut(reader).store;
    for path in ["index.html", "blog/hello.html", "assets/logo.bin", "blog"] {
        match resolve_path(store, &root, path).unwrap() {
            PathTarget::File { size, .. } => {
                let bytes = merkledag::unixfs::read_path(store, &root, path).unwrap();
                println!("  GET /ipfs/{:.12}…/{path:<18} -> file, {size} bytes", root.to_string());
                assert_eq!(bytes.len() as u64, size);
            }
            PathTarget::Directory { entries, .. } => {
                println!(
                    "  GET /ipfs/{:.12}…/{path:<18} -> directory: {:?}",
                    root.to_string(),
                    entries.iter().map(|(n, _, _)| n.as_str()).collect::<Vec<_>>()
                );
            }
        }
    }

    // Verify file contents byte-for-byte.
    let store = &mut net.node_mut(reader).store;
    assert_eq!(merkledag::unixfs::read_path(store, &root, "index.html").unwrap(), index);
    assert_eq!(merkledag::unixfs::read_path(store, &root, "blog/hello.html").unwrap(), post);
    assert_eq!(merkledag::unixfs::read_path(store, &root, "assets/logo.bin").unwrap(), logo);
    println!("\nevery path verified against its CID ✓");

    // Missing path fails cleanly, like a gateway 404.
    let err = merkledag::unixfs::read_path(store, &root, "nope.html").unwrap_err();
    println!("GET /nope.html -> {err} (the gateway's 404)");
}
