#!/usr/bin/env sh
# Repo health gate: formatting, lints (warnings are errors), full tests.
# Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "All checks passed."
