#!/usr/bin/env sh
# Repo health gate: formatting, lints (warnings are errors), full tests.
# Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "== throughput smoke (events/sec regression gate) =="
# The gate runs on the wheel scheduler — the default, and the one whose
# performance we ship.
cargo build --release -q -p bench --bin throughput
SMOKE_DIR="$(mktemp -d)"
IPFS_REPRO_CSV_DIR="$SMOKE_DIR" IPFS_REPRO_SCHED=wheel ./target/release/throughput --smoke \
    --check-against results/BENCH_throughput_smoke_baseline.json
rm -rf "$SMOKE_DIR"

echo "== scheduler equivalence (heap vs wheel digest gate) =="
# The timing wheel must be order-exactly equivalent to the BinaryHeap
# reference: a digest run (deterministic event/walk counts + metrics
# fingerprint, no wall-clock values) must be byte-identical under both.
SCHED_DIR="$(mktemp -d)"
IPFS_REPRO_SCHED=heap ./target/release/throughput --smoke --digest \
    > "$SCHED_DIR/heap.txt" 2> /dev/null
IPFS_REPRO_SCHED=wheel ./target/release/throughput --smoke --digest \
    > "$SCHED_DIR/wheel.txt" 2> /dev/null
if ! cmp -s "$SCHED_DIR/heap.txt" "$SCHED_DIR/wheel.txt"; then
    echo "throughput --smoke --digest differs between IPFS_REPRO_SCHED=heap and =wheel" >&2
    diff "$SCHED_DIR/heap.txt" "$SCHED_DIR/wheel.txt" >&2 || true
    rm -rf "$SCHED_DIR"
    exit 1
fi
rm -rf "$SCHED_DIR"

echo "== PDES equivalence (serial vs sharded digest gate) =="
# The region-sharded engine must reproduce the serial total order exactly:
# a digest run (event counts, (time,key) order fingerprints, metrics
# fingerprints, bytes/node — no wall-clock values) must be byte-identical
# at IPFS_REPRO_SHARDS=1 (the exact serial path) and =6.
PDES_DIR="$(mktemp -d)"
IPFS_REPRO_SHARDS=1 ./target/release/throughput --smoke --digest \
    > "$PDES_DIR/serial.txt" 2> /dev/null
IPFS_REPRO_SHARDS=6 ./target/release/throughput --smoke --digest \
    > "$PDES_DIR/sharded.txt" 2> /dev/null
if ! cmp -s "$PDES_DIR/serial.txt" "$PDES_DIR/sharded.txt"; then
    echo "throughput --smoke --digest differs between IPFS_REPRO_SHARDS=1 and =6" >&2
    diff "$PDES_DIR/serial.txt" "$PDES_DIR/sharded.txt" >&2 || true
    rm -rf "$PDES_DIR"
    exit 1
fi
rm -rf "$PDES_DIR"

echo "== dtrace equivalence (tracing on/off digest gate) =="
# Distributed tracing + the flight recorder observe, never perturb: a
# digest run must be byte-identical with IPFS_REPRO_DTRACE unset and =1.
DT_DIR="$(mktemp -d)"
./target/release/throughput --smoke --digest > "$DT_DIR/off.txt" 2> /dev/null
IPFS_REPRO_DTRACE=1 ./target/release/throughput --smoke --digest \
    > "$DT_DIR/on.txt" 2> /dev/null
if ! cmp -s "$DT_DIR/off.txt" "$DT_DIR/on.txt"; then
    echo "throughput --smoke --digest differs between IPFS_REPRO_DTRACE unset and =1" >&2
    diff "$DT_DIR/off.txt" "$DT_DIR/on.txt" >&2 || true
    rm -rf "$DT_DIR"
    exit 1
fi
rm -rf "$DT_DIR"

echo "== dtrace overhead (tracing throughput budget gate) =="
# The always-on flight recorder plus full tracing must keep the smoke sim
# cell at >= 0.8x the untraced events/sec (exit 1 inside the bin if not).
./target/release/throughput --overhead-check

echo "== chaos smoke (fault-injection determinism gate) =="
# The chaos harness must exit 0 and print byte-identical output whether
# its scenario cells run serially or on 4 worker threads.
cargo build --release -q -p bench --bin chaos
CHAOS_DIR="$(mktemp -d)"
IPFS_REPRO_JOBS=1 ./target/release/chaos --smoke > "$CHAOS_DIR/j1.txt"
IPFS_REPRO_JOBS=4 ./target/release/chaos --smoke > "$CHAOS_DIR/j4.txt"
if ! cmp -s "$CHAOS_DIR/j1.txt" "$CHAOS_DIR/j4.txt"; then
    echo "chaos --smoke output differs between IPFS_REPRO_JOBS=1 and =4" >&2
    diff "$CHAOS_DIR/j1.txt" "$CHAOS_DIR/j4.txt" >&2 || true
    rm -rf "$CHAOS_DIR"
    exit 1
fi
rm -rf "$CHAOS_DIR"

echo "== gateway fleet smoke (determinism + requests/sec regression gate) =="
# The fleet harness must exit 0, stay byte-identical on stdout whether its
# cells run serially or on 4 workers, and hold the headline cell's
# sustained requests/sec within 0.7x of the recorded baseline.
cargo build --release -q -p bench --bin gateway_fleet
FLEET_DIR="$(mktemp -d)"
IPFS_REPRO_JOBS=1 ./target/release/gateway_fleet --smoke > "$FLEET_DIR/j1.txt" 2> /dev/null
IPFS_REPRO_JOBS=4 ./target/release/gateway_fleet --smoke \
    --check-against results/BENCH_gateway_fleet.json > "$FLEET_DIR/j4.txt"
if ! cmp -s "$FLEET_DIR/j1.txt" "$FLEET_DIR/j4.txt"; then
    echo "gateway_fleet --smoke output differs between IPFS_REPRO_JOBS=1 and =4" >&2
    diff "$FLEET_DIR/j1.txt" "$FLEET_DIR/j4.txt" >&2 || true
    rm -rf "$FLEET_DIR"
    exit 1
fi
rm -rf "$FLEET_DIR"

echo "== swarm smoke (determinism + goodput regression gate) =="
# The swarm-transfer harness must exit 0, stay byte-identical on stdout
# whether its cells run serially or on 4 workers, and hold the headline
# cell's events/sec within 0.7x of the recorded smoke baseline.
cargo build --release -q -p bench --bin swarm
SWARM_DIR="$(mktemp -d)"
IPFS_REPRO_JOBS=1 ./target/release/swarm --smoke > "$SWARM_DIR/j1.txt" 2> /dev/null
IPFS_REPRO_JOBS=4 ./target/release/swarm --smoke \
    --check-against results/BENCH_swarm_smoke_baseline.json > "$SWARM_DIR/j4.txt"
if ! cmp -s "$SWARM_DIR/j1.txt" "$SWARM_DIR/j4.txt"; then
    echo "swarm --smoke output differs between IPFS_REPRO_JOBS=1 and =4" >&2
    diff "$SWARM_DIR/j1.txt" "$SWARM_DIR/j4.txt" >&2 || true
    rm -rf "$SWARM_DIR"
    exit 1
fi
rm -rf "$SWARM_DIR"

echo "== lifecycle smoke (determinism + expiry-mode + events/sec gates) =="
# The content-lifecycle harness must exit 0 and print byte-identical
# stdout (a) serially vs on 4 workers, (b) with the PDES cell on 1 vs 4
# shards, and (c) with wheel vs reference-scan provider expiry — while
# holding the headline cell's events/sec within 0.7x of the recorded
# smoke baseline.
cargo build --release -q -p bench --bin lifecycle
LIFE_DIR="$(mktemp -d)"
IPFS_REPRO_JOBS=1 IPFS_REPRO_SHARDS=1 ./target/release/lifecycle --smoke \
    > "$LIFE_DIR/j1.txt" 2> /dev/null
IPFS_REPRO_JOBS=4 IPFS_REPRO_SHARDS=4 ./target/release/lifecycle --smoke \
    --check-against results/BENCH_lifecycle_smoke_baseline.json > "$LIFE_DIR/j4.txt"
if ! cmp -s "$LIFE_DIR/j1.txt" "$LIFE_DIR/j4.txt"; then
    echo "lifecycle --smoke output differs between jobs/shards 1 and 4" >&2
    diff "$LIFE_DIR/j1.txt" "$LIFE_DIR/j4.txt" >&2 || true
    rm -rf "$LIFE_DIR"
    exit 1
fi
IPFS_REPRO_EXPIRY=scan ./target/release/lifecycle --smoke \
    > "$LIFE_DIR/scan.txt" 2> /dev/null
# The wheel's slot bookkeeping is real memory the scan path doesn't
# allocate, so the "node state" bytes_estimate legitimately differs;
# every semantic line (records, messages, availability, digests) must
# still match exactly.
sed 's/; node state: .*$//' "$LIFE_DIR/j1.txt" > "$LIFE_DIR/j1.sem.txt"
sed 's/; node state: .*$//' "$LIFE_DIR/scan.txt" > "$LIFE_DIR/scan.sem.txt"
if ! cmp -s "$LIFE_DIR/j1.sem.txt" "$LIFE_DIR/scan.sem.txt"; then
    echo "lifecycle --smoke output differs between IPFS_REPRO_EXPIRY wheel and scan" >&2
    diff "$LIFE_DIR/j1.sem.txt" "$LIFE_DIR/scan.sem.txt" >&2 || true
    rm -rf "$LIFE_DIR"
    exit 1
fi
rm -rf "$LIFE_DIR"

echo "== latency smoke (span-attribution determinism gate) =="
# The latency-attribution harness must exit 0, emit its table + JSON, and
# print byte-identical artifacts whether cells run serially or on 4
# workers (stdout and both written files are compared).
cargo build --release -q -p bench --bin latency
LAT_DIR="$(mktemp -d)"
IPFS_REPRO_JOBS=1 ./target/release/latency --smoke --out "$LAT_DIR/j1" \
    --trace-out "$LAT_DIR/j1/traces.json" > /dev/null
IPFS_REPRO_JOBS=4 ./target/release/latency --smoke --out "$LAT_DIR/j4" \
    --trace-out "$LAT_DIR/j4/traces.json" > /dev/null
for f in tab_latency_attribution.txt BENCH_latency.json traces.json; do
    if ! cmp -s "$LAT_DIR/j1/$f" "$LAT_DIR/j4/$f"; then
        echo "latency --smoke $f differs between IPFS_REPRO_JOBS=1 and =4" >&2
        diff "$LAT_DIR/j1/$f" "$LAT_DIR/j4/$f" >&2 || true
        rm -rf "$LAT_DIR"
        exit 1
    fi
done
grep -q '"dominant_component": "dht_walk"' "$LAT_DIR/j1/BENCH_latency.json" || {
    echo "latency --smoke: DHT walk is not the dominant component" >&2
    rm -rf "$LAT_DIR"
    exit 1
}
rm -rf "$LAT_DIR"

echo "All checks passed."
