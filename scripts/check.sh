#!/usr/bin/env sh
# Repo health gate: formatting, lints (warnings are errors), full tests.
# Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "== throughput smoke (events/sec regression gate) =="
cargo build --release -q -p bench --bin throughput
SMOKE_DIR="$(mktemp -d)"
IPFS_REPRO_CSV_DIR="$SMOKE_DIR" ./target/release/throughput --smoke \
    --check-against results/BENCH_throughput_smoke_baseline.json
rm -rf "$SMOKE_DIR"

echo "All checks passed."
